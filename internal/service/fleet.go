package service

// Fleet mode: instead of every job describing its own cluster, the server
// owns one heterogeneous fleet and a fleet.Allocator partitions it into
// leases, one per admitted job. Submit validates only the workload half of
// the spec (the GPUs field caps the lease size rather than naming a
// testbed), acquires a lease through the allocator — possibly shrinking
// elastic incumbents to make room — and the job plans against its lease view
// exactly like a dedicated-cluster job, through the same queue, worker pool
// and warm-cache registry. Identical-shaped leases share warm sets for free:
// ViewOf names views canonically by shape, and the workload fingerprint
// never sees fleet device identities.
//
// Lease lifecycle against the job lifecycle:
//
//	submit  → waiting (no capacity yet) or queued (lease granted)
//	queued  → lease may still be resized by the allocator (grown when a job
//	          finishes, shrunk to admit an arrival); the job just swaps views
//	running → the lease is pinned: a plan in progress is never resized under
//	          the worker planning it
//	terminal (done/failed/canceled) → the lease is released and the freed
//	          servers rebalance: waiting jobs admit first, incumbents grow
//	          onto the rest
//
// Every grant and release is recorded on the owning job's plan-update event
// log (lease-granted / lease-resized / lease-released), the same log the
// telemetry monitor writes drift events to.

import (
	"fmt"

	"heterog/internal/cli"
	"heterog/internal/cluster"
	"heterog/internal/fleet"
	"heterog/internal/store"
)

// FleetStatus is the wire representation of GET /v1/fleet: the allocator's
// partition snapshot plus the job states behind it.
type FleetStatus struct {
	fleet.State
	// JobStates maps every lease-holding or waiting job to its lifecycle
	// state, so one call shows which leases back running plans vs queued ones.
	JobStates map[string]JobState `json:"job_states,omitempty"`
}

// Fleet snapshots the fleet partition. ErrNotFound when the server does not
// run in fleet mode.
func (s *Server) Fleet() (*FleetStatus, error) {
	if s.fleetAlloc == nil {
		return nil, fmt.Errorf("%w: server does not run in fleet mode", ErrNotFound)
	}
	st := &FleetStatus{State: s.fleetAlloc.Snapshot(), JobStates: map[string]JobState{}}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, li := range st.Leases {
		if j := s.jobs[li.Job]; j != nil {
			st.JobStates[li.Job] = j.state
		}
	}
	for _, id := range st.Waiting {
		if j := s.jobs[id]; j != nil {
			st.JobStates[id] = j.state
		}
	}
	return st, nil
}

// submitFleet admits a job in fleet mode: record it waiting, ask the
// allocator for a lease (spec.GPUs caps the lease size; 0 = no cap), and
// apply whatever grants fall out — the new job's admission and any resizes
// of elastic incumbents that made room for it.
func (s *Server) submitFleet(spec cli.Spec) (*JobStatus, error) {
	if spec.Cluster != nil {
		return nil, fmt.Errorf("cli: fleet mode: the server owns the cluster; drop the cluster spec (gpus caps the lease size)")
	}
	if err := spec.ValidateWorkload(); err != nil {
		return nil, err
	}
	if spec.GPUs < 0 {
		return nil, fmt.Errorf("cli: fleet mode: gpus cap must be non-negative, got %d", spec.GPUs)
	}
	g, err := spec.BuildGraph()
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	if s.draining {
		s.rejected++
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.nextID++
	j := &job{
		id:        s.jobIDLocked(),
		spec:      spec,
		graph:     g,
		model:     g.Name,
		batch:     g.BatchSize,
		state:     JobWaiting,
		submitted: s.now(),
		done:      make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.accepted++
	s.evictJobsLocked()
	s.persistJobLocked(j)
	s.mu.Unlock()

	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	grants, err := s.fleetAlloc.Submit(fleet.JobSpec{
		ID:         j.id,
		Graph:      g,
		Seed:       seed,
		MaxDevices: spec.GPUs,
	})
	if err != nil {
		s.mu.Lock()
		j.state = JobFailed
		j.err = err.Error()
		j.failure = err
		j.finished = s.now()
		close(j.done)
		s.persistJobLocked(j)
		st := s.statusLocked(j)
		s.mu.Unlock()
		return st, err
	}
	s.applyGrants(grants)
	return s.Status(j.id)
}

// resubmitFleet puts a recovered fleet job back through the allocator for a
// fresh lease (the old one died with the previous process). Called from Open
// after the workers start.
func (s *Server) resubmitFleet(j *job) {
	seed := j.spec.Seed
	if seed == 0 {
		seed = 1
	}
	s.mu.Lock()
	s.persistJobLocked(j) // records the back-to-waiting state
	s.mu.Unlock()
	grants, err := s.fleetAlloc.Submit(fleet.JobSpec{
		ID:         j.id,
		Graph:      j.graph,
		Seed:       seed,
		MaxDevices: j.spec.GPUs,
	})
	if err != nil {
		s.mu.Lock()
		j.state = JobFailed
		j.err = fmt.Sprintf("recovery: %v", err)
		j.failure = err
		j.finished = s.now()
		close(j.done)
		s.persistJobLocked(j)
		s.mu.Unlock()
		return
	}
	s.applyGrants(grants)
}

// applyGrants folds allocator decisions into job records: waiting jobs with
// a fresh lease enqueue for planning, queued jobs swap onto their resized
// view, and every change lands on the job's event log. Grants can arrive out
// of order across concurrent Submit/Release calls, so a grant older than the
// job's current lease (by Lease.Seq) is dropped. Running jobs never see
// grants (their leases are pinned; the tiny pin race is resolved inside
// fleetPin), terminal ones have released already.
func (s *Server) applyGrants(grants []fleet.Grant) {
	for _, g := range grants {
		var enqueue *job
		s.mu.Lock()
		j := s.jobs[g.Job]
		if j == nil || (j.lease != nil && j.lease.Seq >= g.Lease.Seq) {
			s.mu.Unlock()
			continue
		}
		switch j.state {
		case JobWaiting:
			s.adoptLeaseLocked(j, g.Lease)
			j.state = JobQueued
			s.fleetEventLocked(j, EventLeaseGranted, "")
			s.persistJobLocked(j)
			s.persistLeaseLocked(j)
			enqueue = j
		case JobQueued:
			s.adoptLeaseLocked(j, g.Lease)
			reason := "lease grown after a release"
			if g.Shrunk {
				reason = "lease shrunk to admit an arrival"
			}
			s.fleetEventLocked(j, EventLeaseResized, reason)
			s.persistLeaseLocked(j)
		}
		s.mu.Unlock()
		if enqueue != nil {
			s.enqueueFleet(enqueue)
		}
	}
}

// adoptLeaseLocked points the job at a lease's view and re-keys its warm
// set. Callers hold s.mu.
func (s *Server) adoptLeaseLocked(j *job, l *cluster.Lease) {
	j.lease = l
	j.cluster = l.View
	j.warmKey = warmKey(&j.spec, j.graph, j.cluster)
}

// persistLeaseLocked records the job's current lease grant in the store.
// Callers hold s.mu.
func (s *Server) persistLeaseLocked(j *job) {
	if j.lease == nil {
		return
	}
	s.persistLease(store.LeaseRecord{
		Job:     j.id,
		Lease:   j.lease.ID,
		Devices: j.lease.NumDevices(),
		Seq:     j.lease.Seq,
	})
}

// fleetEventLocked appends a lease-lifecycle event to the job's plan-update
// log, creating a watcherless monitor if the job has none yet (telemetry can
// attach its drift watcher later). Callers hold s.mu.
func (s *Server) fleetEventLocked(j *job, typ EventType, reason string) {
	if j.mon == nil {
		j.mon = s.newJobMonitor(j.id)
	}
	ev := PlanEvent{Type: typ, Reason: reason}
	if j.lease != nil {
		ev.Lease = j.lease.ID
		ev.LeaseDevices = j.lease.NumDevices()
		ev.Cluster = j.lease.View.Name
	}
	j.mon.append(s.now(), ev)
}

// enqueueFleet hands a lease-holding job to the worker pool. Fleet-mode
// queue depth is sized to MaxJobs (admission control lives in the
// allocator), so a full queue means the retention bound itself is exceeded;
// such a job fails rather than silently wedging with a lease held.
func (s *Server) enqueueFleet(j *job) {
	s.mu.Lock()
	if j.state != JobQueued { // canceled between grant and enqueue
		s.mu.Unlock()
		return
	}
	select {
	case s.queue <- j:
		s.mu.Unlock()
		return
	default:
	}
	j.state = JobFailed
	j.err = ErrQueueFull.Error()
	j.failure = ErrQueueFull
	j.finished = s.now()
	j.started = j.finished
	close(j.done)
	s.persistJobLocked(j)
	s.mu.Unlock()
	s.fleetRelease(j)
}

// fleetPin freezes the job's lease for the duration of planning and adopts
// the allocator's authoritative lease, closing the race window between a
// worker picking the job up and a concurrent resize grant that was minted
// before the pin but not yet applied (its Seq is older than or equal to the
// pinned lease's, so applyGrants drops it).
func (s *Server) fleetPin(j *job) {
	if s.fleetAlloc == nil {
		return
	}
	s.fleetAlloc.Pin(j.id)
	l := s.fleetAlloc.Lease(j.id)
	if l == nil {
		return
	}
	s.mu.Lock()
	if j.lease == nil || j.lease.Seq < l.Seq {
		s.adoptLeaseLocked(j, l)
	}
	s.mu.Unlock()
}

// fleetRelease returns a terminal job's lease (or waiting-queue slot) to the
// allocator and applies the rebalance that falls out: waiting jobs admit
// first, then incumbents grow. Safe to call for jobs that never held a lease
// and idempotent across repeated terminal paths.
func (s *Server) fleetRelease(j *job) {
	if s.fleetAlloc == nil {
		return
	}
	s.mu.Lock()
	released := j.lease
	j.lease = nil // j.cluster stays: reports still describe the planned view
	if released != nil {
		s.fleetEventLocked(j, EventLeaseReleased, string(j.state))
		s.persistLease(store.LeaseRecord{
			Job:      j.id,
			Lease:    released.ID,
			Devices:  released.NumDevices(),
			Seq:      released.Seq,
			Released: true,
		})
	}
	s.mu.Unlock()
	grants := s.fleetAlloc.Release(j.id)
	s.applyGrants(grants)
}
