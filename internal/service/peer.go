package service

// Peer warm-cache exchange: replicas of the planning service trade warm
// artifacts — the winning strategy per workload fingerprint, exported by
// exportArtifact when a job finishes — over a small HTTP API:
//
//	GET /v1/peer/cache           → PeerCacheIndex: what this replica has warm
//	GET /v1/peer/artifact/{key}  → one artifact blob (404 when absent)
//
// A replica that is cold on a workload (first job for its fingerprint) checks
// its own artifact store first (which warm-starts restarts for free: the file
// store still holds yesterday's artifacts), then asks each configured peer.
// A fetched artifact is validated (op count must match the job's graph),
// adopted into the local store, and fed to the planner as a search seed
// (heterog.WithWarmStrategy): the import is never worse than planning cold,
// because the seed only wins if the search cannot beat it.
//
// The exchange ships strategies, not compiled artifacts: a strategy is a few
// KB of JSON and recompiles into a full lowered artifact in one pass on the
// importer, whereas the lowered IR itself is megabytes and device-layout
// bound (see evalcache.Artifact).

import (
	"fmt"
	"io"
	"net/http"
	"strings"

	"heterog/internal/cli"
	"heterog/internal/evalcache"
	"heterog/internal/store"
)

// PeerStats counts the warm-cache exchange, in /v1/stats.
type PeerStats struct {
	// Exported counts artifacts this replica published to its store.
	Exported uint64 `json:"exported,omitempty"`
	// LocalWarmStarts counts cold workloads seeded from the replica's own
	// artifact store (typically after a restart).
	LocalWarmStarts uint64 `json:"local_warm_starts,omitempty"`
	// PeerWarmStarts counts cold workloads seeded from a peer's artifact.
	PeerWarmStarts uint64 `json:"peer_warm_starts,omitempty"`
	// Misses counts cold workloads no local or peer artifact covered.
	Misses uint64 `json:"misses,omitempty"`
	// FetchErrors counts failed peer fetches (unreachable peer, bad blob).
	FetchErrors uint64 `json:"fetch_errors,omitempty"`
}

// peerState is the server's exchange-side state (counters under s.mu).
type peerState struct {
	stats  PeerStats
	client *http.Client
}

func (s *Server) peerClient() *http.Client {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.peer.client == nil {
		s.peer.client = &http.Client{Timeout: s.cfg.PeerTimeout}
	}
	return s.peer.client
}

// PeerCacheIndex is the wire form of GET /v1/peer/cache: which workloads this
// replica can serve warm. Routers score cache affinity from it; peers use it
// to advertise, though fetches go straight to /v1/peer/artifact/{key}.
type PeerCacheIndex struct {
	Node    string           `json:"node,omitempty"`
	Store   string           `json:"store"`
	Entries []PeerCacheEntry `json:"entries"`
}

// PeerCacheEntry describes one exported artifact.
type PeerCacheEntry struct {
	// Key is the full hex workload key (the artifact's store key).
	Key  string `json:"key"`
	Size int    `json:"size"`
	// Resident reports whether the workload's warm cache set is live in
	// memory right now (stronger than having the artifact on disk), and Jobs
	// how many jobs have shared it.
	Resident bool `json:"resident,omitempty"`
	Jobs     int  `json:"jobs,omitempty"`
}

// exportArtifact publishes a finished job's winning strategy under its
// workload key. Failures degrade the exchange, not the job — they only trip
// the readiness probe via persistFail.
func (s *Server) exportArtifact(j *job) {
	s.mu.Lock()
	var (
		key      = j.warmKey
		report   = j.report
		numOps   int
		nodeName = s.cfg.NodeID
		created  = s.now()
	)
	if j.graph != nil {
		numOps = len(j.graph.Ops)
	}
	s.mu.Unlock()
	if report == nil || len(report.Strategy) == 0 || key == (evalcache.Key{}) {
		return
	}
	art := &evalcache.Artifact{
		Workload:   key.Hex(),
		Node:       nodeName,
		Model:      report.Model,
		Batch:      report.Batch,
		Cluster:    report.Cluster,
		NumOps:     numOps,
		PerIterSec: report.PerIterationSec,
		Strategy:   report.Strategy,
		CreatedAt:  created,
	}
	blob, err := art.Encode()
	if err != nil {
		s.persistFail(fmt.Errorf("encode artifact %s: %w", art.Workload, err))
		return
	}
	if err := s.store.PutArtifact(art.Workload, blob); err != nil {
		s.persistFail(fmt.Errorf("persist artifact %s: %w", art.Workload, err))
		return
	}
	s.mu.Lock()
	s.peer.stats.Exported++
	s.mu.Unlock()
}

// warmStrategyFor finds a seed strategy for a workload this replica is cold
// on: local artifact store first, then each peer in order. Returns nil when
// nothing usable exists — planning proceeds cold, exactly as before.
func (s *Server) warmStrategyFor(j *job) []byte {
	if j.warmKey == (evalcache.Key{}) || j.graph == nil {
		return nil
	}
	keyHex := j.warmKey.Hex()
	wantOps := len(j.graph.Ops)

	if blob, err := s.store.GetArtifact(keyHex); err == nil {
		if art, err := evalcache.DecodeArtifact(blob); err == nil && art.NumOps == wantOps {
			s.mu.Lock()
			s.peer.stats.LocalWarmStarts++
			s.mu.Unlock()
			return art.Strategy
		}
	}

	for _, peer := range s.cfg.Peers {
		art, err := s.fetchPeerArtifact(peer, keyHex)
		if err != nil {
			if err != errPeerMiss {
				s.mu.Lock()
				s.peer.stats.FetchErrors++
				s.mu.Unlock()
			}
			continue
		}
		if art.NumOps != wantOps {
			continue
		}
		// Adopt: future jobs (and restarts) warm-start locally.
		if blob, err := art.Encode(); err == nil {
			if err := s.store.PutArtifact(keyHex, blob); err != nil {
				s.persistFail(fmt.Errorf("adopt artifact %s: %w", keyHex, err))
			}
		}
		s.mu.Lock()
		s.peer.stats.PeerWarmStarts++
		s.mu.Unlock()
		return art.Strategy
	}

	s.mu.Lock()
	s.peer.stats.Misses++
	s.mu.Unlock()
	return nil
}

// errPeerMiss distinguishes "peer answered: not found" from a failed fetch.
var errPeerMiss = fmt.Errorf("peer does not have the artifact")

// fetchPeerArtifact GETs one artifact from a peer replica.
func (s *Server) fetchPeerArtifact(baseURL, keyHex string) (*evalcache.Artifact, error) {
	url := strings.TrimRight(baseURL, "/") + "/v1/peer/artifact/" + keyHex
	resp, err := s.peerClient().Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, errPeerMiss
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer %s: HTTP %d", baseURL, resp.StatusCode)
	}
	blob, err := io.ReadAll(io.LimitReader(resp.Body, maxSpecBytes))
	if err != nil {
		return nil, err
	}
	return evalcache.DecodeArtifact(blob)
}

// PeerIndex snapshots what this replica can serve warm.
func (s *Server) PeerIndex() (*PeerCacheIndex, error) {
	arts, err := s.store.Artifacts()
	if err != nil {
		return nil, err
	}
	idx := &PeerCacheIndex{Node: s.cfg.NodeID, Store: s.store.Kind(), Entries: make([]PeerCacheEntry, 0, len(arts))}
	s.mu.Lock()
	resident := make(map[string]int, len(s.warm))
	for key, ws := range s.warm {
		resident[key.Hex()] = ws.jobs
	}
	s.mu.Unlock()
	for _, a := range arts {
		e := PeerCacheEntry{Key: a.Key, Size: a.Size}
		if jobs, ok := resident[a.Key]; ok {
			e.Resident, e.Jobs = true, jobs
		}
		idx.Entries = append(idx.Entries, e)
	}
	return idx, nil
}

func (s *Server) handlePeerIndex(w http.ResponseWriter, r *http.Request) {
	idx, err := s.PeerIndex()
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, idx)
}

func (s *Server) handlePeerArtifact(w http.ResponseWriter, r *http.Request) {
	keyHex := r.PathValue("key")
	if _, err := evalcache.ParseKey(keyHex); err != nil {
		s.writeError(w, err)
		return
	}
	blob, err := s.store.GetArtifact(keyHex)
	if err != nil {
		if err == store.ErrNotFound {
			s.writeError(w, fmt.Errorf("%w: no artifact for %s", ErrNotFound, keyHex))
			return
		}
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(blob)
}

// WorkloadKey resolves a classic-mode spec to its hex workload key — the same
// key the server files warm sets and exported artifacts under. Routers use it
// to score cache affinity before picking a replica.
func WorkloadKey(spec cli.Spec) (string, error) {
	g, c, err := resolveSpec(&spec)
	if err != nil {
		return "", err
	}
	return warmKey(&spec, g, c).Hex(), nil
}
