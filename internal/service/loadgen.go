package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"heterog/internal/cli"
)

// LoadConfig drives RunLoad, the bench-serve load generator.
type LoadConfig struct {
	// Specs is the workload mix; jobs round-robin over it.
	Specs []cli.Spec
	// Concurrencies are the client fan-outs to measure, one result row each.
	Concurrencies []int
	// JobsPerLevel is how many jobs each concurrency level submits.
	JobsPerLevel int
	// PollWait is the long-poll window per status request (default 30s).
	PollWait time.Duration
}

// LoadResult is one concurrency level's measurement: throughput, latency
// percentiles of the submit→terminal round trip, and the warm-cache hit
// rates accumulated during the level (deltas, not lifetime totals).
type LoadResult struct {
	Concurrency int     `json:"concurrency"`
	Jobs        int     `json:"jobs"`
	Failed      int     `json:"failed"`
	Retries429  int     `json:"retries_429"`
	WallSec     float64 `json:"wall_sec"`
	Throughput  float64 `json:"throughput_jobs_per_sec"`
	P50Sec      float64 `json:"p50_sec"`
	P99Sec      float64 `json:"p99_sec"`
	// EvalHitRate and LoweredHitRate are hits/(hits+misses) across all warm
	// sets during this level.
	EvalHitRate    float64 `json:"eval_hit_rate"`
	LoweredHitRate float64 `json:"lowered_hit_rate"`
}

// cacheTotals sums hit/miss counters across every warm set.
type cacheTotals struct {
	evalHits, evalMisses, lowHits, lowMisses uint64
}

func totals(st *ServerStats) cacheTotals {
	var t cacheTotals
	for _, ws := range st.WarmSets {
		t.evalHits += ws.Eval.Hits
		t.evalMisses += ws.Eval.Misses
		t.lowHits += ws.Lowered.Hits
		t.lowMisses += ws.Lowered.Misses
	}
	return t
}

func hitRate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// percentile returns the q-quantile of xs (nearest-rank on a sorted copy).
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// RunLoad drives the server through the client at each configured
// concurrency level and reports throughput, latency and cache hit rates.
// Queue-full rejections are retried after the server's Retry-After hint, so
// every job eventually lands (backpressure, not loss).
func RunLoad(ctx context.Context, c *Client, cfg LoadConfig) ([]LoadResult, error) {
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("service: load config needs at least one spec")
	}
	if cfg.JobsPerLevel <= 0 {
		cfg.JobsPerLevel = 8
	}
	if len(cfg.Concurrencies) == 0 {
		cfg.Concurrencies = []int{1, 2, 4, 8}
	}
	var results []LoadResult
	for _, conc := range cfg.Concurrencies {
		before, err := c.Stats(ctx)
		if err != nil {
			return nil, err
		}
		res := LoadResult{Concurrency: conc, Jobs: cfg.JobsPerLevel}
		latencies := make([]float64, cfg.JobsPerLevel)
		failed := make([]bool, cfg.JobsPerLevel)
		var retries429 int64
		var mu sync.Mutex

		start := time.Now()
		sem := make(chan struct{}, conc)
		var wg sync.WaitGroup
		for i := 0; i < cfg.JobsPerLevel; i++ {
			sem <- struct{}{}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				spec := cfg.Specs[i%len(cfg.Specs)]
				t0 := time.Now()
				var st *JobStatus
				for {
					var err error
					st, err = c.Submit(ctx, spec)
					if err == nil {
						break
					}
					var apiErr *APIError
					if errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests {
						mu.Lock()
						retries429++
						mu.Unlock()
						backoff := apiErr.RetryAfter
						if backoff <= 0 {
							backoff = 100 * time.Millisecond
						}
						select {
						case <-time.After(backoff):
							continue
						case <-ctx.Done():
							failed[i] = true
							return
						}
					}
					failed[i] = true
					return
				}
				final, err := c.Wait(ctx, st.ID, cfg.PollWait)
				if err != nil || final.State != JobDone {
					failed[i] = true
					return
				}
				latencies[i] = time.Since(t0).Seconds()
			}(i)
		}
		wg.Wait()
		res.WallSec = time.Since(start).Seconds()
		res.Retries429 = int(retries429)

		var ok []float64
		for i, l := range latencies {
			if failed[i] {
				res.Failed++
				continue
			}
			ok = append(ok, l)
		}
		if res.WallSec > 0 {
			res.Throughput = float64(len(ok)) / res.WallSec
		}
		res.P50Sec = percentile(ok, 0.50)
		res.P99Sec = percentile(ok, 0.99)

		after, err := c.Stats(ctx)
		if err != nil {
			return nil, err
		}
		tb, ta := totals(before), totals(after)
		res.EvalHitRate = hitRate(ta.evalHits-tb.evalHits, ta.evalMisses-tb.evalMisses)
		res.LoweredHitRate = hitRate(ta.lowHits-tb.lowHits, ta.lowMisses-tb.lowMisses)
		results = append(results, res)
	}
	return results, nil
}
