package service

import (
	"context"
	"encoding/json"
	"time"

	"heterog"
	"heterog/internal/cli"
	"heterog/internal/cluster"
	"heterog/internal/core"
	"heterog/internal/evalcache"
	"heterog/internal/graph"
)

// JobState is the lifecycle of a planning job.
type JobState string

const (
	// JobWaiting: accepted in fleet mode, waiting for the allocator to grant
	// a lease (fleet capacity, not worker capacity).
	JobWaiting JobState = "waiting"
	// JobQueued: accepted, waiting for a worker.
	JobQueued JobState = "queued"
	// JobRunning: a worker is planning.
	JobRunning JobState = "running"
	// JobDone: planning finished; the report is available.
	JobDone JobState = "done"
	// JobFailed: planning errored (including timeout and worker panic).
	JobFailed JobState = "failed"
	// JobCanceled: canceled by the client before completion.
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// job is the server-side record of one accepted planning job. Mutable fields
// are guarded by the server's mutex; done is closed exactly once when the job
// reaches a terminal state.
type job struct {
	id       string
	spec     cli.Spec
	replanOf string // source job ID for replan jobs ("" for plain plans)
	auto     bool   // true for replans fired by the telemetry monitor
	// recovered marks a job replayed from the store after a restart. Its
	// runner is gone (recovered done jobs serve reports but not traces or
	// replans), and recovered replan jobs plan fresh from their described
	// cluster instead of reusing a source runner that no longer exists.
	recovered bool

	// Resolved at admission so a malformed spec is rejected before queueing.
	// In fleet mode cluster and warmKey stay unset until a lease is granted
	// (adoptLeaseLocked fills them from the lease's view).
	graph   *graph.Graph
	cluster *cluster.View
	warmKey evalcache.Key
	// model and batch duplicate the graph's identity so status survives a
	// restart (recovered terminal jobs carry no graph); clusterName and
	// clusterDevices do the same for the cluster.
	model          string
	batch          int
	clusterName    string
	clusterDevices int
	// lease is the fleet lease backing cluster in fleet mode; nil in classic
	// mode, and cleared on release (cluster stays for reporting).
	lease *cluster.Lease

	state JobState
	err   string
	// failure keeps the typed planning error (heterog.ErrOOM,
	// heterog.ErrNoStrategy, ...) so artifact requests against a failed job
	// can surface it through the error envelope with its stable code.
	failure   error
	runner    *heterog.Runner
	report    *PlanReport
	submitted time.Time
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc
	done      chan struct{}
	// mon is the telemetry monitor, created lazily by the first
	// PushTelemetry once the job is done (nil until then).
	mon *monitor
}

// WarmStats reports the warm-cache set a job planned through.
type WarmStats struct {
	// Eval and Lowered snapshot the shared evaluation and lowered-artifact
	// caches (cumulative across every job that shared the set).
	Eval    heterog.CacheStats `json:"eval"`
	Lowered heterog.CacheStats `json:"lowered"`
	// SharedJobs counts jobs (including this one) that planned through the
	// same warm set since the server created it.
	SharedJobs int `json:"shared_jobs"`
}

// JobStatus is the wire representation of a job's lifecycle.
type JobStatus struct {
	ID       string   `json:"id"`
	State    JobState `json:"state"`
	Model    string   `json:"model"`
	Batch    int      `json:"batch"`
	Cluster  string   `json:"cluster"`
	Devices  int      `json:"devices"`
	ReplanOf string   `json:"replan_of,omitempty"`
	// Auto marks replans fired by the telemetry monitor rather than a client.
	Auto bool `json:"auto,omitempty"`
	// Recovered marks jobs replayed from the durable store after a restart.
	Recovered bool   `json:"recovered,omitempty"`
	Error     string `json:"error,omitempty"`
	// Lease names the fleet lease currently backing the job (fleet mode,
	// until released).
	Lease string `json:"lease,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	// PlanSec is the wall-clock planning time (running → terminal).
	PlanSec float64 `json:"plan_sec,omitempty"`
	// Warm snapshots the shared warm-cache set once the job has run.
	Warm *WarmStats `json:"warm,omitempty"`
}

// PlanReport is the wire representation of a finished plan: the numbers a
// Runner exposes in-process, plus the chosen strategy itself and the warm
// state the job planned through.
type PlanReport struct {
	Model   string `json:"model"`
	Batch   int    `json:"batch"`
	Cluster string `json:"cluster"`
	Devices int    `json:"devices"`

	PerIterationSec float64 `json:"per_iteration_sec"`
	ComputeSec      float64 `json:"compute_sec"`
	CommSec         float64 `json:"comm_sec"`
	PeakMemBytes    []int64 `json:"peak_mem_bytes"`

	// Strategy is the chosen deployment plan in the strategy JSON format
	// (decisions per op group, execution order choice).
	Strategy json.RawMessage `json:"strategy,omitempty"`
	// Robust is the fault-scenario profile: present when the job requested
	// robust planning (optimized) or fault scoring (report-only).
	Robust *heterog.RobustReport `json:"robust,omitempty"`
	// Pipeline is the planning-pipeline instrumentation for this job's
	// evaluator family (per-pass timings, recompiles avoided).
	Pipeline *core.PipelineReport `json:"pipeline,omitempty"`

	PlanSec float64    `json:"plan_sec"`
	Warm    *WarmStats `json:"warm,omitempty"`
}

// ReplanRequest asks the server to replan a finished job on a changed
// (typically degraded) cluster, reusing the warm agent where the device
// count allows. Exactly one of the fields must be set.
type ReplanRequest struct {
	// DropDevice removes one device (by ID) from the source job's cluster —
	// the "a GPU just died" fast path.
	DropDevice *int `json:"drop_device,omitempty"`
	// Cluster replans onto an explicitly described cluster.
	Cluster *cli.ClusterSpec `json:"cluster,omitempty"`
	// GPUs replans onto a canned testbed (4, 8, 12 or 64).
	GPUs int `json:"gpus,omitempty"`
}

// ServerStats is the wire representation of /v1/stats.
type ServerStats struct {
	// Node names this replica (Config.NodeID; empty for anonymous servers).
	Node string `json:"node,omitempty"`
	// Store names the durable backend ("mem" or "file").
	Store      string `json:"store,omitempty"`
	Workers    int    `json:"workers"`
	QueueDepth int    `json:"queue_depth"`
	// Waiting counts fleet-mode jobs admitted but not yet granted a lease.
	Waiting  int `json:"waiting,omitempty"`
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`

	Accepted uint64 `json:"accepted"`
	Rejected uint64 `json:"rejected"`

	// Pruning aggregates the cold-path pruning counters (bounds tried, sims
	// aborted, candidates halved, time saved) across every completed job.
	Pruning core.PruneReport `json:"pruning"`

	// Telemetry aggregates the online replanning loop: observations folded,
	// drift episodes detected, automatic replans and their outcomes.
	Telemetry TelemetryStats `json:"telemetry"`

	// Recovery reports what the server replayed from its store at startup
	// (zero value for a fresh start).
	Recovery RecoveryStats `json:"recovery,omitempty"`
	// Peer reports the warm-cache exchange counters (zero without peers).
	Peer PeerStats `json:"peer,omitempty"`

	WarmSets []WarmSetStats `json:"warm_sets"`
}

// WarmSetStats describes one warm-cache set in /v1/stats.
type WarmSetStats struct {
	// Workload is a short hex prefix of the workload fingerprint.
	Workload string             `json:"workload"`
	Jobs     int                `json:"jobs"`
	Eval     heterog.CacheStats `json:"eval"`
	Lowered  heterog.CacheStats `json:"lowered"`
}
