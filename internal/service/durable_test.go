package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"heterog/internal/cluster"
	"heterog/internal/store"
)

// openFileServer builds a server on a file store in dir and serves its HTTP
// API. The caller crashes or closes it explicitly.
func openFileServer(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	cfg.Store = st
	srv, err := Open(cfg)
	if err != nil {
		t.Fatalf("service.Open: %v", err)
	}
	return srv, httptest.NewServer(srv.Handler())
}

// TestCrashRecoveryClassic is the crash-consistency test: a server on a file
// store is killed (store severed first, like a power cut) with one job done,
// one mid-plan and two still queued. A second server on the same directory
// must restore the finished job's report and drive every unfinished job to
// done, with each event log densely numbered across both lifetimes.
func TestCrashRecoveryClassic(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	srv, ts := openFileServer(t, dir, Config{Workers: 1, QueueDepth: 8})
	// First job plans for real (so a report exists to survive the crash);
	// later jobs block until the power cut.
	running := make(chan string, 4)
	power := make(chan struct{})
	srv.runHook = func(ctx context.Context, j *job) error {
		running <- j.id
		if strings.HasSuffix(j.id, "000001") {
			return srv.plan(ctx, j)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-power:
			return errors.New("power cut")
		}
	}
	c := NewClient(ts.URL)

	var ids []string
	for i := 0; i < 4; i++ {
		st, err := c.Submit(ctx, quickSpec())
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, st.ID)
	}
	if fin, err := c.Wait(ctx, ids[0], 10*time.Second); err != nil || fin.State != JobDone {
		t.Fatalf("job 1 before crash: %+v, %v", fin, err)
	}
	// Wait until job 2 is inside the hook (persisted as running), then cut
	// the power: the store is severed first (nothing after it reaches disk),
	// so jobs 3 and 4 die queued and job 2 dies running.
	for id := ""; id != ids[1]; id = <-running {
	}
	_ = srv.store.Close()
	close(power)
	srv.crash()
	ts.Close()

	srv2, ts2 := openFileServer(t, dir, Config{Workers: 1, QueueDepth: 8})
	defer func() { ts2.Close(); _ = srv2.Close() }()
	c2 := NewClient(ts2.URL)

	stats, err := c2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Recovery.Jobs != 4 || stats.Recovery.Requeued != 3 {
		t.Fatalf("recovery stats = %+v, want 4 jobs, 3 re-queued", stats.Recovery)
	}
	if stats.Store != "file" {
		t.Fatalf("stats.Store = %q, want file", stats.Store)
	}

	for _, id := range ids {
		fin, err := c2.Wait(ctx, id, 30*time.Second)
		if err != nil {
			t.Fatalf("job %s after restart: %v", id, err)
		}
		if fin.State != JobDone {
			t.Fatalf("job %s = %s (%s), want done", id, fin.State, fin.Error)
		}
		if !fin.Recovered {
			t.Fatalf("job %s was restored from the store but not marked recovered", id)
		}
	}
	// The pre-crash job's report must have survived via the store.
	if _, err := c2.Report(ctx, ids[0]); err != nil {
		t.Fatalf("report of pre-crash job: %v", err)
	}

	// Dense event logs across the restart, and the recovery marker present.
	for i, id := range ids {
		evs, err := c2.Events(ctx, id, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		recs := make([]store.EventRecord, len(evs))
		var recovered bool
		for k, ev := range evs {
			recs[k] = store.EventRecord{Seq: ev.Seq}
			recovered = recovered || ev.Type == EventJobRecovered
		}
		if err := store.ValidateEventLog(id, recs); err != nil {
			t.Fatal(err)
		}
		if i > 0 && !recovered {
			t.Fatalf("job %s has no %s event: %v", id, EventJobRecovered, eventTypes(evs))
		}
		if i == 0 && recovered {
			t.Fatalf("job %s finished before the crash; it must not log %s", id, EventJobRecovered)
		}
	}
}

// TestCrashRecoveryFleet crashes a fleet-mode server mid-batch: recovered
// jobs must be resubmitted through the allocator (fresh leases, since grants
// died with the process) and their lease event trails must continue the
// pre-crash sequence numbers without a gap.
func TestCrashRecoveryFleet(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	cfg := Config{Workers: 1, Fleet: cluster.Testbed8(), FleetEstimate: fleetEstimate(100)}

	srv, ts := openFileServer(t, dir, cfg)
	power := make(chan struct{})
	started := make(chan struct{}, 4)
	srv.runHook = func(ctx context.Context, j *job) error {
		started <- struct{}{}
		select {
		case <-power:
			return errors.New("power cut")
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	c := NewClient(ts.URL)

	var ids []string
	for i := 0; i < 3; i++ {
		st, err := c.Submit(ctx, fleetSpec(2))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, st.ID)
	}
	<-started // one job holds a lease and is planning
	_ = srv.store.Close()
	close(power)
	srv.crash()
	ts.Close()

	srv2, ts2 := openFileServer(t, dir, cfg)
	defer func() { ts2.Close(); _ = srv2.Close() }()
	c2 := NewClient(ts2.URL)

	for _, id := range ids {
		fin, err := c2.Wait(ctx, id, 30*time.Second)
		if err != nil {
			t.Fatalf("job %s after restart: %v", id, err)
		}
		if fin.State != JobDone {
			t.Fatalf("job %s = %s (%s), want done", id, fin.State, fin.Error)
		}
		evs, err := c2.Events(ctx, id, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		recs := make([]store.EventRecord, len(evs))
		var granted, recovered bool
		for k, ev := range evs {
			recs[k] = store.EventRecord{Seq: ev.Seq}
			granted = granted || ev.Type == EventLeaseGranted
			recovered = recovered || ev.Type == EventJobRecovered
		}
		if err := store.ValidateEventLog(id, recs); err != nil {
			t.Fatalf("lease trail across restart: %v (types %v)", err, eventTypes(evs))
		}
		if !granted || !recovered {
			t.Fatalf("job %s events %v, want lease-granted and job-recovered", id, eventTypes(evs))
		}
	}
}

// TestPeerWarmExchange runs two replicas: after A plans a workload, B's
// first job for the same fingerprint must warm-start from A's exported
// artifact via the peer API.
func TestPeerWarmExchange(t *testing.T) {
	ctx := context.Background()
	srvA, err := Open(Config{Workers: 1, NodeID: "a"})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA.Handler())
	defer func() { tsA.Close(); _ = srvA.Close() }()

	srvB, err := Open(Config{Workers: 1, NodeID: "b", Peers: []string{tsA.URL}})
	if err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(srvB.Handler())
	defer func() { tsB.Close(); _ = srvB.Close() }()

	cA, cB := NewClient(tsA.URL), NewClient(tsB.URL)
	st, err := cA.Submit(ctx, quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if fin, err := cA.Wait(ctx, st.ID, 30*time.Second); err != nil || fin.State != JobDone {
		t.Fatalf("job on A: %+v, %v", fin, err)
	}
	if got := srvA.Stats().Peer.Exported; got != 1 {
		t.Fatalf("A exported %d artifacts, want 1", got)
	}

	// A's index must advertise the artifact (this is what routers score on).
	resp, err := http.Get(tsA.URL + "/v1/peer/cache")
	if err != nil {
		t.Fatal(err)
	}
	var idx PeerCacheIndex
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if idx.Node != "a" || len(idx.Entries) != 1 {
		t.Fatalf("peer index = %+v, want node a with 1 entry", idx)
	}

	st2, err := cB.Submit(ctx, quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if fin, err := cB.Wait(ctx, st2.ID, 30*time.Second); err != nil || fin.State != JobDone {
		t.Fatalf("job on B: %+v, %v", fin, err)
	}
	pb := srvB.Stats().Peer
	if pb.PeerWarmStarts != 1 || pb.Misses != 0 {
		t.Fatalf("B peer stats = %+v, want exactly 1 peer warm-start", pb)
	}
	// The fetched artifact was adopted: B can now serve it itself.
	if _, err := srvB.store.GetArtifact(idx.Entries[0].Key); err != nil {
		t.Fatalf("B did not adopt the fetched artifact: %v", err)
	}
}

// TestSSEStreaming covers the streaming events endpoint at both levels: the
// raw SSE wire format and the client's StreamEvents helper following a live
// fleet job across frames.
func TestSSEStreaming(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t, Config{Workers: 1, Fleet: cluster.Testbed8(), FleetEstimate: fleetEstimate(100)})

	st, err := c.Submit(ctx, fleetSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if fin, err := c.Wait(ctx, st.ID, 30*time.Second); err != nil || fin.State != JobDone {
		t.Fatalf("fleet job: %+v, %v", fin, err)
	}

	// Raw wire check: proper content type, id: lines carrying the seq.
	resp, err := http.Get(c.BaseURL + "/v1/jobs/" + st.ID + "/events?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var sawID, sawData bool
	for sc.Scan() && !(sawID && sawData) {
		line := sc.Text()
		sawID = sawID || line == "id: 1"
		sawData = sawData || strings.HasPrefix(line, "data: {")
	}
	resp.Body.Close()
	if !sawID || !sawData {
		t.Fatalf("SSE frames missing id/data lines (sawID=%v sawData=%v)", sawID, sawData)
	}

	// Client helper: collect the whole log, then cancel once we have the
	// terminal lease-released event.
	streamCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var got []PlanEvent
	err = c.StreamEvents(streamCtx, st.ID, 0, func(ev PlanEvent) error {
		got = append(got, ev)
		if ev.Type == EventLeaseReleased {
			cancel()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("StreamEvents: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("StreamEvents delivered no events")
	}
	for i, ev := range got {
		if ev.Seq != uint64(i)+1 {
			t.Fatalf("streamed seq %d at position %d: %v", ev.Seq, i, eventTypes(got))
		}
	}

	// Streaming an unknown job reports not-found instead of hanging.
	if err := c.StreamEvents(ctx, "job-999999", 0, func(PlanEvent) error { return nil }); !errors.Is(err, ErrNotFound) {
		t.Fatalf("StreamEvents(unknown) = %v, want ErrNotFound", err)
	}
}

// TestClientRetry exercises WithRetry against a flaky in-test server: two
// queue_full rejections with a retry_after_ms hint, then success. A
// non-retryable error must fail fast.
func TestClientRetry(t *testing.T) {
	ctx := context.Background()
	var posts atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			if posts.Add(1) <= 2 {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusTooManyRequests)
				_ = json.NewEncoder(w).Encode(map[string]any{
					"error": map[string]any{
						"code": CodeQueueFull, "message": "queue full", "retry_after_ms": 5,
					},
				})
				return
			}
			w.WriteHeader(http.StatusAccepted)
			_ = json.NewEncoder(w).Encode(JobStatus{ID: "job-000001", State: JobQueued})
			return
		}
		http.NotFound(w, r)
	}))
	defer flaky.Close()

	c := NewClient(flaky.URL).WithRetry(RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond})
	st, err := c.Submit(ctx, quickSpec())
	if err != nil {
		t.Fatalf("submit through flaky server: %v", err)
	}
	if st.ID != "job-000001" || posts.Load() != 3 {
		t.Fatalf("got %+v after %d posts, want success on attempt 3", st, posts.Load())
	}

	// Exhausted retries surface the backpressure error.
	posts.Store(-100)
	if _, err := c.Submit(ctx, quickSpec()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("exhausted retries = %v, want ErrQueueFull", err)
	}

	// Non-retryable errors never retry.
	var gets atomic.Int64
	strict := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gets.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		_ = json.NewEncoder(w).Encode(map[string]any{
			"error": map[string]any{"code": CodeNotFound, "message": "no such job"},
		})
	}))
	defer strict.Close()
	c2 := NewClient(strict.URL).WithRetry(RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond})
	if _, err := c2.Status(ctx, "job-000404"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("status = %v, want ErrNotFound", err)
	}
	if gets.Load() != 1 {
		t.Fatalf("non-retryable error retried: %d requests", gets.Load())
	}
}

// TestHealthReady covers the probe pair: healthz is unconditional liveness,
// readyz flips to 503 when the durable store starts failing writes.
func TestHealthReady(t *testing.T) {
	ctx := context.Background()
	srv, c := newTestServer(t, Config{Workers: 1})
	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if err := c.Readyz(ctx); err != nil {
		t.Fatalf("readyz: %v", err)
	}

	// Sever the store: the next persisted transition must trip readiness
	// while liveness (and serving) stay up.
	_ = srv.store.Close()
	st, err := c.Submit(ctx, quickSpec())
	if err != nil {
		t.Fatalf("submit with failing store: %v", err)
	}
	_, _ = c.Wait(ctx, st.ID, 30*time.Second)
	if err := c.Readyz(ctx); err == nil {
		t.Fatal("readyz ok with failing store, want 503")
	}
	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz must stay ok: %v", err)
	}
}
