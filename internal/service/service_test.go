package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"heterog/internal/cli"
)

// newTestServer starts a service with its HTTP API on an httptest listener
// and returns the typed client pointed at it. Cleanup closes both.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return srv, NewClient(ts.URL)
}

// quickSpec is a real workload small enough for tests (~0.1s to plan).
func quickSpec() cli.Spec {
	return cli.Spec{Model: "vgg19", Batch: 64, GPUs: 4, Seed: 1, Episodes: 1}
}

// TestE2ESubmitPollReport covers the happy path over real HTTP: submit a
// zoo job, long-poll to done, fetch the report and the Chrome trace.
func TestE2ESubmitPollReport(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()

	st, err := c.Submit(ctx, quickSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st.State != JobQueued && st.State != JobRunning {
		t.Fatalf("fresh job state = %s", st.State)
	}
	if st.Model != "VGG-19" || st.Devices != 4 {
		t.Fatalf("status (model=%q devices=%d), want VGG-19 on 4 devices", st.Model, st.Devices)
	}

	final, err := c.Wait(ctx, st.ID, 30*time.Second)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != JobDone {
		t.Fatalf("job ended %s (%s), want done", final.State, final.Error)
	}
	if final.PlanSec <= 0 {
		t.Fatalf("PlanSec = %v, want > 0", final.PlanSec)
	}

	rep, err := c.Report(ctx, st.ID)
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	if rep.PerIterationSec <= 0 {
		t.Fatalf("PerIterationSec = %v, want > 0", rep.PerIterationSec)
	}
	if len(rep.Strategy) == 0 || !json.Valid(rep.Strategy) {
		t.Fatalf("strategy missing or invalid JSON (%d bytes)", len(rep.Strategy))
	}
	if rep.Pipeline == nil || rep.Pipeline.Lowerings == 0 {
		t.Fatalf("pipeline report missing: %+v", rep.Pipeline)
	}
	if rep.Warm == nil || rep.Warm.SharedJobs != 1 {
		t.Fatalf("warm stats = %+v, want SharedJobs = 1", rep.Warm)
	}

	var trace bytes.Buffer
	if err := c.Trace(ctx, st.ID, &trace); err != nil {
		t.Fatalf("trace: %v", err)
	}
	if !strings.Contains(trace.String(), "traceEvents") {
		t.Fatalf("trace is not Chrome trace-event JSON (%d bytes)", trace.Len())
	}

	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatalf("jobs: %v", err)
	}
	if len(jobs) != 1 || jobs[0].ID != st.ID {
		t.Fatalf("job listing = %+v, want just %s", jobs, st.ID)
	}
}

// TestRobustJob exercises the fault-scoring path over the API: report-only
// (faults without robust) and optimized (robust) both attach a RobustReport.
func TestRobustJob(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()

	for _, robust := range []bool{false, true} {
		spec := quickSpec()
		spec.FaultK = 2
		spec.FaultSeed = 1
		spec.Robust = robust
		spec.Blend = 0.5
		st, err := c.Submit(ctx, spec)
		if err != nil {
			t.Fatalf("submit(robust=%v): %v", robust, err)
		}
		if final, err := c.Wait(ctx, st.ID, 30*time.Second); err != nil || final.State != JobDone {
			t.Fatalf("wait(robust=%v): state=%v err=%v", robust, final.State, err)
		}
		rep, err := c.Report(ctx, st.ID)
		if err != nil {
			t.Fatalf("report(robust=%v): %v", robust, err)
		}
		if rep.Robust == nil || rep.Robust.Scenarios != 2 || rep.Robust.WorstSec < rep.Robust.NominalSec {
			t.Fatalf("robust report (robust=%v) = %+v", robust, rep.Robust)
		}
	}
}

// TestQueueFullBackpressure fills the queue behind a blocked worker and
// checks the overflow submission is rejected with HTTP 429 + Retry-After,
// while every accepted job still completes after the worker unblocks.
func TestQueueFullBackpressure(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 1, RetryAfter: 3 * time.Second})
	release := make(chan struct{})
	srv.runHook = func(ctx context.Context, j *job) error {
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Close()
	})
	c := NewClient(ts.URL)
	ctx := context.Background()

	// First job occupies the worker, second fills the 1-deep queue.
	var accepted []string
	for i := 0; i < 2; i++ {
		st, err := c.Submit(ctx, quickSpec())
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		accepted = append(accepted, st.ID)
	}
	// Wait until the worker has actually popped job 1, so the queue slot
	// usage is deterministic: worker holds job 1, queue holds job 2.
	waitState(t, srv, accepted[0], JobRunning)

	_, err := c.Submit(ctx, quickSpec())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %v, want HTTP 429", err)
	}
	if apiErr.RetryAfter != 3*time.Second {
		t.Fatalf("Retry-After = %v, want 3s", apiErr.RetryAfter)
	}
	if apiErr.Code != CodeQueueFull {
		// The stable code is what non-Go clients key off.
		t.Fatalf("envelope code = %q, want %q", apiErr.Code, CodeQueueFull)
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("429 must round-trip to ErrQueueFull via the envelope, got %v", err)
	}

	close(release)
	for _, id := range accepted {
		if final, err := c.Wait(ctx, id, 30*time.Second); err != nil || final.State != JobDone {
			t.Fatalf("accepted job %s: state=%v err=%v — backpressure must not drop accepted work", id, final.State, err)
		}
	}
	if st := srv.Stats(); st.Rejected != 1 || st.Accepted != 2 {
		t.Fatalf("stats accepted/rejected = %d/%d, want 2/1", st.Accepted, st.Rejected)
	}
}

// waitState polls in-process until the job reaches the wanted state.
func waitState(t *testing.T, srv *Server, id string, want JobState) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := srv.Status(id)
		if err != nil {
			t.Fatalf("status %s: %v", id, err)
		}
		if st.State == want {
			return
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached terminal %s waiting for %s", id, st.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
}

// TestCancelMidJob cancels a running job (hook parks on ctx) and a queued
// job (worker busy), and checks both reach canceled with the report absent.
func TestCancelMidJob(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	release := make(chan struct{})
	srv.runHook = func(ctx context.Context, j *job) error {
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err() // a well-behaved planner surfaces cancellation
		}
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Close()
	})
	c := NewClient(ts.URL)
	ctx := context.Background()

	running, err := c.Submit(ctx, quickSpec())
	if err != nil {
		t.Fatalf("submit running: %v", err)
	}
	queued, err := c.Submit(ctx, quickSpec())
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}
	waitState(t, srv, running.ID, JobRunning)

	// Cancel the queued job first: it must never start.
	if _, err := c.Cancel(ctx, queued.ID); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if st, err := c.Wait(ctx, queued.ID, time.Second); err != nil || st.State != JobCanceled {
		t.Fatalf("queued job after cancel: state=%v err=%v", st.State, err)
	}

	// Cancel the running job: ctx fires inside the hook.
	if _, err := c.Cancel(ctx, running.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	st, err := c.Wait(ctx, running.ID, 30*time.Second)
	if err != nil || st.State != JobCanceled {
		t.Fatalf("running job after cancel: state=%v err=%v", st.State, err)
	}
	if st.Error != "canceled by client" {
		t.Fatalf("cancel error = %q", st.Error)
	}

	// No report exists for a canceled job → 409.
	_, err = c.Report(ctx, running.ID)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusConflict {
		t.Fatalf("report of canceled job: %v, want HTTP 409", err)
	}

	// Cancel is idempotent on terminal jobs.
	if st, err := c.Cancel(ctx, running.ID); err != nil || st.State != JobCanceled {
		t.Fatalf("re-cancel: state=%v err=%v", st.State, err)
	}
	close(release)
}

// TestDrainKeepsAcceptedJobs verifies graceful shutdown: draining refuses
// new work (503 over HTTP) but every job admitted before the drain reaches
// done, none dropped.
func TestDrainKeepsAcceptedJobs(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 8})
	started := make(chan struct{}, 16)
	srv.runHook = func(ctx context.Context, j *job) error {
		started <- struct{}{}
		time.Sleep(20 * time.Millisecond) // in-flight work the drain must wait out
		return nil
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close() })
	c := NewClient(ts.URL)
	ctx := context.Background()

	var ids []string
	for i := 0; i < 4; i++ {
		st, err := c.Submit(ctx, quickSpec())
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, st.ID)
	}
	<-started // at least one job is mid-flight when the drain begins

	drainCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	for _, id := range ids {
		st, err := srv.Status(id)
		if err != nil {
			t.Fatalf("status %s: %v", id, err)
		}
		if st.State != JobDone {
			t.Fatalf("job %s ended %s after drain, want done (accepted jobs must not be dropped)", id, st.State)
		}
	}

	// The drained server refuses new submissions with 503.
	_, err := c.Submit(ctx, quickSpec())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain: %v, want HTTP 503", err)
	}
}

// TestReplanEndpoint replans a finished job onto a degraded cluster and
// checks the device count shrank and the result is a normal done job.
func TestReplanEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()

	st, err := c.Submit(ctx, quickSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if final, err := c.Wait(ctx, st.ID, 30*time.Second); err != nil || final.State != JobDone {
		t.Fatalf("source job: state=%v err=%v", final.State, err)
	}

	drop := 0
	re, err := c.Replan(ctx, st.ID, ReplanRequest{DropDevice: &drop})
	if err != nil {
		t.Fatalf("replan: %v", err)
	}
	if re.ReplanOf != st.ID {
		t.Fatalf("ReplanOf = %q, want %q", re.ReplanOf, st.ID)
	}
	if final, err := c.Wait(ctx, re.ID, 30*time.Second); err != nil || final.State != JobDone {
		t.Fatalf("replan job: state=%v err=%v", final.State, err)
	}
	rep, err := c.Report(ctx, re.ID)
	if err != nil {
		t.Fatalf("replan report: %v", err)
	}
	if rep.Devices != 3 {
		t.Fatalf("replanned devices = %d, want 3", rep.Devices)
	}
	if rep.PerIterationSec <= 0 {
		t.Fatalf("replanned PerIterationSec = %v", rep.PerIterationSec)
	}

	// Exactly one replan field must be set.
	if _, err := c.Replan(ctx, st.ID, ReplanRequest{}); err == nil {
		t.Fatal("empty replan request accepted")
	}
	// Replanning an unfinished/unknown source fails cleanly.
	var apiErr *APIError
	if _, err := c.Replan(ctx, "job-999999", ReplanRequest{DropDevice: &drop}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("replan of unknown job: %v, want 404", err)
	}
}

// TestHTTPValidation covers the malformed-input surface: bad spec JSON,
// unknown fields, specs that fail validation, unknown job IDs.
func TestHTTPValidation(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	var apiErr *APIError
	if _, err := c.Status(ctx, "job-000042"); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("status of unknown job: %v, want 404", err)
	}

	// Spec failing validation: zoo model with no batch.
	if _, err := c.Submit(ctx, cli.Spec{Model: "vgg19", GPUs: 4}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("invalid spec: %v, want 400", err)
	}

	// Unknown fields are rejected, not silently dropped.
	resp, err := http.Post(c.BaseURL+"/v1/jobs", "application/json",
		strings.NewReader(`{"model":"vgg19","batch":64,"gpus":4,"bogus":1}`))
	if err != nil {
		t.Fatalf("raw post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-field spec: HTTP %d, want 400", resp.StatusCode)
	}

	// Long-poll with a bad wait duration.
	resp2, err := http.Get(c.BaseURL + "/v1/jobs/job-000001?wait=banana")
	if err != nil {
		t.Fatalf("raw get: %v", err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad wait duration: HTTP %d, want 400", resp2.StatusCode)
	}
}

// TestPanicIsolation: a panicking job fails alone; the worker survives and
// plans the next job.
func TestPanicIsolation(t *testing.T) {
	srv := New(Config{Workers: 1})
	boom := true
	var mu sync.Mutex
	srv.runHook = func(ctx context.Context, j *job) error {
		mu.Lock()
		b := boom
		boom = false
		mu.Unlock()
		if b {
			panic("synthetic planner crash")
		}
		return nil
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Close()
	})
	c := NewClient(ts.URL)
	ctx := context.Background()

	first, err := c.Submit(ctx, quickSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err := c.Wait(ctx, first.ID, 30*time.Second)
	if err != nil || st.State != JobFailed {
		t.Fatalf("panicked job: state=%v err=%v, want failed", st.State, err)
	}
	if !strings.Contains(st.Error, "panicked") {
		t.Fatalf("panic error = %q", st.Error)
	}

	second, err := c.Submit(ctx, quickSpec())
	if err != nil {
		t.Fatalf("submit after panic: %v", err)
	}
	if st, err := c.Wait(ctx, second.ID, 30*time.Second); err != nil || st.State != JobDone {
		t.Fatalf("job after panic: state=%v err=%v — worker must survive a panic", st.State, err)
	}
}

// TestStressSharedCaches is the -race exhibit: concurrent mixed zoo
// submissions all reach done while sharing warm caches, and a second
// identical batch shows a nonzero shared-cache hit rate.
func TestStressSharedCaches(t *testing.T) {
	if testing.Short() {
		t.Skip("plans real models")
	}
	srv, c := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	ctx := context.Background()

	specs := []cli.Spec{
		{Model: "vgg19", Batch: 64, GPUs: 4, Seed: 1, Episodes: 1},
		{Model: "resnet50", Batch: 64, GPUs: 4, Seed: 1, Episodes: 1},
	}
	batch := func(label string) {
		t.Helper()
		var wg sync.WaitGroup
		errs := make(chan error, 2*len(specs))
		for rep := 0; rep < 2; rep++ {
			for _, sp := range specs {
				wg.Add(1)
				go func(sp cli.Spec) {
					defer wg.Done()
					st, err := c.Submit(ctx, sp)
					if err != nil {
						errs <- fmt.Errorf("%s submit: %w", label, err)
						return
					}
					final, err := c.Wait(ctx, st.ID, 30*time.Second)
					if err != nil {
						errs <- fmt.Errorf("%s wait %s: %w", label, st.ID, err)
						return
					}
					if final.State != JobDone {
						errs <- fmt.Errorf("%s job %s ended %s (%s)", label, st.ID, final.State, final.Error)
					}
				}(sp)
			}
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
		if t.Failed() {
			t.FailNow()
		}
	}

	batch("wave1")
	mid := totals(srv.Stats())

	batch("wave2")
	end := totals(srv.Stats())

	// The second identical wave must hit the warm state the first built.
	evalRate := hitRate(end.evalHits-mid.evalHits, end.evalMisses-mid.evalMisses)
	if evalRate <= 0 {
		t.Errorf("wave2 eval-cache hit rate = 0, want > 0 (hits %d→%d)", mid.evalHits, end.evalHits)
	}
	// Lowered-artifact hits accrue within a wave (between jobs sharing a
	// warm set); in wave2 the eval cache short-circuits lowering entirely,
	// so assert on the cumulative count.
	if end.lowHits == 0 {
		t.Errorf("lowered-cache hits = 0 over both waves, want > 0")
	}
	// Two workloads → two warm sets, each shared by 4 jobs.
	st := srv.Stats()
	if len(st.WarmSets) != 2 {
		t.Fatalf("warm sets = %d, want 2", len(st.WarmSets))
	}
	for _, ws := range st.WarmSets {
		if ws.Jobs != 4 {
			t.Errorf("warm set %s shared by %d jobs, want 4", ws.Workload, ws.Jobs)
		}
	}
	if st.Done != 8 {
		t.Fatalf("done = %d, want 8", st.Done)
	}
}

// TestLoadGenerator runs the bench-serve driver at tiny scale and sanity
// checks its output shape.
func TestLoadGenerator(t *testing.T) {
	if testing.Short() {
		t.Skip("plans real models")
	}
	_, c := newTestServer(t, Config{Workers: 2, QueueDepth: 16})
	results, err := RunLoad(context.Background(), c, LoadConfig{
		Specs:         []cli.Spec{quickSpec()},
		Concurrencies: []int{1, 2},
		JobsPerLevel:  3,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	for _, r := range results {
		if r.Failed != 0 || r.Throughput <= 0 || r.P50Sec <= 0 || r.P99Sec < r.P50Sec {
			t.Fatalf("implausible result row: %+v", r)
		}
	}
	// Level 2 reuses level 1's warm set: its hit rate must be warm.
	if results[1].EvalHitRate <= 0 {
		t.Fatalf("second level eval hit rate = %v, want > 0", results[1].EvalHitRate)
	}
}
