package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"heterog"
	"heterog/internal/telemetry"
)

// This file closes the paper's planning loop online: clients push device/link
// observations at a finished job, a per-job monitor smooths them through the
// telemetry watcher's hysteresis bands, and a detected drift episode fires the
// warm-agent Replan path automatically — through the same bounded queue,
// worker pool and warm-cache registry as any client-submitted job. Every step
// is recorded on a monotonically-sequenced per-job event log that clients
// long-poll via GET /v1/jobs/{id}/events.
//
// The loop per drift episode:
//
//	telemetry push → watcher trips        → drift-detected
//	overlay rendered, replan job admitted → replan-started
//	replan finishes, beats the stale plan → replan-adopted (old/new makespan)
//	             ... or fails to beat it  → replan-kept-incumbent
//	             ... or errors/cancels    → replan-failed
//	watcher rebases onto the drifted state and re-arms
//
// Replans are warm-path cheap twice over: the replan job reuses the
// incumbent runner's strategy-search agent (weights, baselines, encoder
// cache), and its warm-cache registry key is the fingerprint of the *overlaid*
// cluster — the watcher quantizes overlay factors, so equal drift regimes map
// to the same warm set, and a recovered cluster reattaches to the original
// workload's caches.

// EventType names one entry kind in a job's plan-update event log.
type EventType string

const (
	// EventDriftDetected: the watcher's smoothed state left the hysteresis
	// band around the incumbent plan's baseline.
	EventDriftDetected EventType = "drift-detected"
	// EventReplanStarted: an automatic replan job was admitted for the
	// drifted cluster.
	EventReplanStarted EventType = "replan-started"
	// EventReplanAdopted: the replan strictly beats the stale plan on the
	// drifted cluster; OldPerIterSec/NewPerIterSec carry both makespans.
	EventReplanAdopted EventType = "replan-adopted"
	// EventReplanKeptIncumbent: the stale plan is still (at least tied for)
	// the best the search found on the drifted cluster.
	EventReplanKeptIncumbent EventType = "replan-kept-incumbent"
	// EventReplanFailed: the automatic replan could not run (admission
	// failed, planning errored, job canceled); the watcher still rebases so
	// the next drift re-arms the loop.
	EventReplanFailed EventType = "replan-failed"

	// EventLeaseGranted: the fleet allocator granted the job its first lease
	// (fleet mode); Lease/LeaseDevices/Cluster describe the grant.
	EventLeaseGranted EventType = "lease-granted"
	// EventLeaseResized: the allocator replaced the job's lease with a
	// grown or shrunken one while the job was still queued; Reason says which
	// way and why.
	EventLeaseResized EventType = "lease-resized"
	// EventLeaseReleased: the job reached a terminal state and its devices
	// went back to the fleet; Reason carries the terminal state.
	EventLeaseReleased EventType = "lease-released"

	// EventJobRecovered: the server restarted and re-queued this job from its
	// durable store; planning starts over. The event continues the job's
	// pre-crash sequence numbering, so restarts are visible on the log itself.
	EventJobRecovered EventType = "job-recovered"
)

// PlanEvent is one entry of a job's plan-update log. Seq is monotonically
// increasing and gap-free per job, starting at 1 — a client that long-polls
// with ?since=<last seen seq> never misses or double-sees an event.
type PlanEvent struct {
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	Type EventType `json:"type"`
	// Reason is the watcher's trip message (drift-detected) or the failure
	// message (replan-failed).
	Reason string `json:"reason,omitempty"`
	// ReplanJob is the ID of the automatic replan job (replan-* events).
	ReplanJob string `json:"replan_job,omitempty"`
	// Cluster names the overlaid cluster the replan targeted, or the lease
	// view's canonical shape on lease-* events.
	Cluster string `json:"cluster,omitempty"`
	// Lease and LeaseDevices identify the fleet lease on lease-* events.
	Lease        string `json:"lease,omitempty"`
	LeaseDevices int    `json:"lease_devices,omitempty"`
	// OldPerIterSec is the stale (incumbent) plan's per-iteration time on the
	// drifted cluster; NewPerIterSec is the replanned plan's. Set on
	// replan-adopted and replan-kept-incumbent.
	OldPerIterSec float64 `json:"old_per_iter_sec,omitempty"`
	NewPerIterSec float64 `json:"new_per_iter_sec,omitempty"`
}

// TelemetryAck is the response to one telemetry push.
type TelemetryAck struct {
	// Observations is the watcher's cumulative accepted-reading count
	// (malformed readings are skipped and not counted).
	Observations uint64 `json:"observations"`
	// Fired reports whether this push newly tripped a drift episode.
	Fired bool `json:"fired"`
	// Tripped reports whether a drift episode is in progress.
	Tripped bool `json:"tripped"`
	// Reason is the current episode's trip message, if any.
	Reason string `json:"reason,omitempty"`
	// Events is the job's event-log length; poll /events?since= from here.
	Events uint64 `json:"events"`
}

// TelemetryStats aggregates the telemetry loop across all jobs, in /v1/stats.
type TelemetryStats struct {
	Observations  uint64 `json:"observations"`
	DriftEpisodes uint64 `json:"drift_episodes"`
	AutoReplans   uint64 `json:"auto_replans"`
	Adopted       uint64 `json:"replans_adopted"`
	KeptIncumbent uint64 `json:"replans_kept_incumbent"`
	Failed        uint64 `json:"replans_failed"`
}

// monitor is one job's telemetry state: the drift watcher, the event log and
// the replan-in-flight flag. Its own mutex serializes watcher access and
// event appends, so concurrent telemetry pushes interleave safely without
// holding the server lock; notify is closed and replaced on every append to
// wake long-pollers.
type monitor struct {
	mu      sync.Mutex
	watcher *telemetry.Watcher
	events  []PlanEvent
	notify  chan struct{}
	// replanning guards the one-replan-at-a-time invariant; the watcher's
	// trip state enforces it too (no re-fires while tripped), this flag makes
	// it explicit.
	replanning bool
	// incumbent is the job whose runner holds the current plan: the source
	// job at first, then each finished auto-replan job (its agent is warm for
	// the latest cluster, so the next episode replans from it).
	incumbent string
	// onAppend, when set, persists each event as it is appended (under m.mu;
	// it must not take the server lock). Events restored from the store are
	// installed directly into events and never re-fire it.
	onAppend func(PlanEvent)
}

func newMonitor(w *telemetry.Watcher, incumbent string) *monitor {
	return &monitor{watcher: w, notify: make(chan struct{}), incumbent: incumbent}
}

// appendLocked stamps the next gap-free sequence number and wakes pollers.
// Callers hold m.mu.
func (m *monitor) appendLocked(now time.Time, ev PlanEvent) {
	ev.Seq = uint64(len(m.events)) + 1
	ev.Time = now
	m.events = append(m.events, ev)
	if m.onAppend != nil {
		m.onAppend(ev)
	}
	close(m.notify)
	m.notify = make(chan struct{})
}

// append is appendLocked for callers not holding m.mu.
func (m *monitor) append(now time.Time, ev PlanEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.appendLocked(now, ev)
}

// PushTelemetry folds observations into a finished job's drift monitor,
// creating the monitor (with the job's thresholds from the spec's telemetry
// knob, package defaults otherwise) on first push. A push that trips the
// watcher appends a drift-detected event and fires the automatic replan
// goroutine for the overlaid cluster.
func (s *Server) PushTelemetry(id string, readings []telemetry.Reading) (*TelemetryAck, error) {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		return nil, ErrNotFound
	}
	if j.state != JobDone || j.runner == nil {
		st, rec := j.state, j.recovered && j.state == JobDone
		s.mu.Unlock()
		if rec {
			return nil, fmt.Errorf("%w: %s predates a server restart; its runner is gone, submit a fresh job to monitor", ErrNotDone, id)
		}
		return nil, fmt.Errorf("%w: telemetry needs a done job, %s is %s", ErrNotDone, id, st)
	}
	mon := j.mon
	if mon == nil {
		mon = s.newJobMonitor(j.id)
		j.mon = mon
	}
	// Fleet lease events may have created the monitor (watcherless) long
	// before the first telemetry push; attach the drift watcher lazily.
	// Lock ordering s.mu → mon.mu, consistent with fleetEventLocked.
	mon.mu.Lock()
	if mon.watcher == nil {
		w, err := j.runner.Watcher()
		if err != nil {
			mon.mu.Unlock()
			s.mu.Unlock()
			return nil, err
		}
		mon.watcher = w
	}
	mon.mu.Unlock()
	now := s.now()
	s.mu.Unlock()

	mon.mu.Lock()
	before := mon.watcher.Observations()
	fired, reason := mon.watcher.Observe(j.cluster.Cluster, readings...)
	accepted := mon.watcher.Observations() - before
	if fired {
		mon.appendLocked(now, PlanEvent{Type: EventDriftDetected, Reason: reason})
		if !mon.replanning {
			mon.replanning = true
			go s.autoReplan(j, mon)
		}
	}
	ack := &TelemetryAck{
		Observations: mon.watcher.Observations(),
		Fired:        fired,
		Tripped:      mon.watcher.Tripped(),
		Reason:       mon.watcher.Reason(),
		Events:       uint64(len(mon.events)),
	}
	mon.mu.Unlock()

	s.mu.Lock()
	s.telemetry.Observations += accepted
	if fired {
		s.telemetry.DriftEpisodes++
	}
	s.mu.Unlock()
	return ack, nil
}

// autoReplan runs one drift episode end to end: render the watcher's overlay
// onto the source job's nominal cluster, admit a replan job from the
// incumbent runner through the normal queue (retrying briefly through
// backpressure), wait it out, classify the outcome against the stale plan,
// and rebase the watcher so the loop re-arms.
func (s *Server) autoReplan(src *job, mon *monitor) {
	mon.mu.Lock()
	overlay := mon.watcher.Overlay()
	incumbentID := mon.incumbent
	mon.mu.Unlock()

	// Observations are absolute (deviation from nominal), so the overlay
	// always applies to the source job's nominal cluster — not to the last
	// replan's already-overlaid one.
	drifted := src.cluster.ApplyObservations(overlay)

	fail := func(reason string) {
		s.mu.Lock()
		s.telemetry.AutoReplans++
		s.telemetry.Failed++
		now := s.now()
		s.mu.Unlock()
		mon.mu.Lock()
		// Rebase anyway: the episode is spent, and re-arming against the
		// drifted state lets the next drift trigger a fresh attempt instead
		// of wedging the loop tripped forever.
		mon.watcher.Rebase()
		mon.appendLocked(now, PlanEvent{Type: EventReplanFailed, Reason: reason, Cluster: drifted.Name})
		mon.replanning = false
		mon.mu.Unlock()
	}

	spec := src.spec
	spec.Cluster = nil
	spec.GPUs = 0
	re := &job{spec: spec, replanOf: incumbentID, auto: true,
		graph: src.runner.Graph, cluster: drifted,
		warmKey: warmKey(&spec, src.runner.Graph, drifted)}
	re.spec.Cluster = describeCluster(drifted.Cluster)

	var err error
	for attempt := 0; ; attempt++ {
		_, err = s.admit(re)
		if err == nil || !errors.Is(err, ErrQueueFull) || attempt >= 4 {
			break
		}
		time.Sleep(s.cfg.RetryAfter)
	}
	if err != nil {
		fail(fmt.Sprintf("admit replan: %v", err))
		return
	}

	s.mu.Lock()
	now := s.now()
	s.mu.Unlock()
	mon.append(now, PlanEvent{Type: EventReplanStarted, ReplanJob: re.id, Cluster: drifted.Name})

	<-re.done

	s.mu.Lock()
	state, errMsg := re.state, re.err
	reRunner := re.runner
	var incRunner *heterog.Runner
	if inc := s.jobs[incumbentID]; inc != nil {
		incRunner = inc.runner
	}
	s.mu.Unlock()
	if state != JobDone || reRunner == nil {
		fail(fmt.Sprintf("replan job %s ended %s: %s", re.id, state, errMsg))
		return
	}
	if incRunner == nil {
		fail(fmt.Sprintf("incumbent job %s evicted during replan", incumbentID))
		return
	}

	// The stale plan's makespan on the drifted cluster: re-scoring the
	// incumbent strategy through the replan runner's evaluator is a warm
	// cache hit — Replan already evaluated it to decide whether to keep it.
	newPerIter := reRunner.Plan.PerIter
	oldPerIter := newPerIter
	if stale, evalErr := reRunner.Evaluate(incRunner.Strategy); evalErr == nil {
		oldPerIter = stale.PerIter
	}
	typ := EventReplanKeptIncumbent
	if newPerIter < oldPerIter {
		typ = EventReplanAdopted
	}

	s.mu.Lock()
	s.telemetry.AutoReplans++
	if typ == EventReplanAdopted {
		s.telemetry.Adopted++
	} else {
		s.telemetry.KeptIncumbent++
	}
	now = s.now()
	s.mu.Unlock()

	mon.mu.Lock()
	mon.watcher.Rebase()
	mon.incumbent = re.id
	mon.appendLocked(now, PlanEvent{
		Type: typ, ReplanJob: re.id, Cluster: drifted.Name,
		OldPerIterSec: oldPerIter, NewPerIterSec: newPerIter,
	})
	mon.replanning = false
	mon.mu.Unlock()
}

// Events returns a job's plan-update events with Seq > since, without
// blocking. A job that never received telemetry has an empty log.
func (s *Server) Events(id string, since uint64) ([]PlanEvent, error) {
	mon, err := s.monitorOf(id)
	if err != nil {
		return nil, err
	}
	if mon == nil {
		return []PlanEvent{}, nil
	}
	mon.mu.Lock()
	defer mon.mu.Unlock()
	return eventsAfter(mon.events, since), nil
}

// WaitEvents long-polls: it returns as soon as the job has events with
// Seq > since, or an empty slice once ctx fires (a fired deadline is not an
// error, matching the job-status long-poll).
func (s *Server) WaitEvents(ctx context.Context, id string, since uint64) ([]PlanEvent, error) {
	for {
		s.mu.Lock()
		j := s.jobs[id]
		var mon *monitor
		if j != nil {
			mon = j.mon
		}
		s.mu.Unlock()
		if j == nil {
			return nil, ErrNotFound
		}
		var notify chan struct{}
		if mon != nil {
			mon.mu.Lock()
			if evs := eventsAfter(mon.events, since); len(evs) > 0 {
				mon.mu.Unlock()
				return evs, nil
			}
			notify = mon.notify
			mon.mu.Unlock()
		}
		if notify == nil {
			// No monitor yet: poll for its creation at a coarse grain; the
			// first push creates it and appends no events until a trip.
			select {
			case <-time.After(50 * time.Millisecond):
			case <-ctx.Done():
				return []PlanEvent{}, nil
			}
			continue
		}
		select {
		case <-notify:
		case <-ctx.Done():
			return []PlanEvent{}, nil
		}
	}
}

// monitorOf resolves a job's monitor (nil when telemetry never arrived).
func (s *Server) monitorOf(id string) (*monitor, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return nil, ErrNotFound
	}
	return j.mon, nil
}

// eventsAfter copies the suffix with Seq > since. Seqs are dense (Seq == index
// + 1), so the suffix starts at index since.
func eventsAfter(events []PlanEvent, since uint64) []PlanEvent {
	if since >= uint64(len(events)) {
		return []PlanEvent{}
	}
	return append([]PlanEvent(nil), events[since:]...)
}
