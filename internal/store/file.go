package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// File is the crash-safe Store: an append-only JSONL journal plus fsynced,
// atomically-renamed snapshots, with warm artifacts as individual files.
//
// Layout under the root directory:
//
//	journal.jsonl    one JSON record per line, appended and fsynced per write
//	snapshot.json    compacted Snapshot, written via tmp + fsync + rename
//	artifacts/<key>  one warm-artifact blob per workload key (tmp + rename)
//
// Crash-safety argument:
//
//   - Every journal append is a single line written and fsynced before the
//     call returns, so an acknowledged write survives a kill. A crash mid-
//     append can only leave a partial *final* line; Open tolerates exactly
//     that (the torn tail is dropped, every complete line is replayed).
//   - Compaction writes snapshot.json.tmp, fsyncs it, renames it over
//     snapshot.json (atomic on POSIX), fsyncs the directory, and only then
//     truncates (and fsyncs) the journal — a crash between any two steps
//     leaves either the old snapshot + full journal or the new snapshot +
//     (possibly still full) journal, both of which replay to the same state
//     because every journal record is an idempotent upsert over the
//     snapshot: jobs and leases are keyed last-write-wins, and an "ev"
//     record is skipped when the job's dense 1-based log already covers its
//     Seq (see applyLocked).
//   - Artifacts are written to <key>.tmp, fsynced and renamed, so a reader
//     (local or a peer fetch) never observes a half-written blob.
//
// The store keeps a resident mirror of the journaled state so Load and
// compaction never re-read the journal after Open.
type File struct {
	dir string

	mu      sync.Mutex
	closed  bool
	journal *os.File
	jsize   int64
	// compactAt triggers compaction when the journal exceeds this many
	// bytes (0 = DefaultCompactBytes).
	compactAt int64

	// Resident mirror of the persisted state (same shape as Mem).
	jobs   map[string]JobRecord
	order  []string
	events map[string][]EventRecord
	leases map[string]LeaseRecord
}

// DefaultCompactBytes is the journal size that triggers a snapshot + journal
// truncation. Job records are small (a few KB with reports); the default
// keeps replay under a few thousand records.
const DefaultCompactBytes = 4 << 20

const (
	journalName  = "journal.jsonl"
	snapshotName = "snapshot.json"
	artifactsDir = "artifacts"
)

// journalRec is one journal line: a tagged union of the record kinds.
type journalRec struct {
	T string `json:"t"` // "job" | "ev" | "lease"
	// Job is the owning job ID for "ev" records.
	Job   string       `json:"job,omitempty"`
	JobV  *JobRecord   `json:"job_v,omitempty"`
	EvV   *EventRecord `json:"ev_v,omitempty"`
	LeasV *LeaseRecord `json:"lease_v,omitempty"`
}

// snapshotFile is the on-disk snapshot schema.
type snapshotFile struct {
	Version int                      `json:"version"`
	Jobs    []JobRecord              `json:"jobs"`
	Events  map[string][]EventRecord `json:"events"`
	Leases  map[string]LeaseRecord   `json:"leases"`
}

// Open opens (creating if needed) a file store rooted at dir, replaying any
// existing snapshot and journal into the resident mirror. A torn final
// journal line — the signature of a crash mid-append — is dropped; any other
// malformed line is a hard error (the journal is not ours to guess about).
func Open(dir string) (*File, error) {
	if err := os.MkdirAll(filepath.Join(dir, artifactsDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	f := &File{
		dir:       dir,
		compactAt: DefaultCompactBytes,
		jobs:      make(map[string]JobRecord),
		events:    make(map[string][]EventRecord),
		leases:    make(map[string]LeaseRecord),
	}
	if err := f.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := f.replayJournal(); err != nil {
		return nil, err
	}
	j, err := os.OpenFile(filepath.Join(dir, journalName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open journal: %w", err)
	}
	st, err := j.Stat()
	if err != nil {
		j.Close()
		return nil, fmt.Errorf("store: stat journal: %w", err)
	}
	f.journal = j
	f.jsize = st.Size()
	return f, nil
}

func (f *File) loadSnapshot() error {
	raw, err := os.ReadFile(filepath.Join(f.dir, snapshotName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: read snapshot: %w", err)
	}
	var snap snapshotFile
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("store: decode snapshot: %w", err)
	}
	if snap.Version != 1 {
		return fmt.Errorf("store: unsupported snapshot version %d", snap.Version)
	}
	for _, rec := range snap.Jobs {
		f.order = append(f.order, rec.ID)
		f.jobs[rec.ID] = rec
	}
	for id, evs := range snap.Events {
		f.events[id] = evs
	}
	for id, l := range snap.Leases {
		f.leases[id] = l
	}
	return nil
}

func (f *File) replayJournal() error {
	file, err := os.Open(filepath.Join(f.dir, journalName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: open journal: %w", err)
	}
	defer file.Close()
	sc := bufio.NewScanner(file)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var rec journalRec
		if err := json.Unmarshal(raw, &rec); err != nil {
			// A torn write can only be the final line; peek whether more
			// complete lines follow to distinguish crash tail from rot.
			if sc.Scan() {
				return fmt.Errorf("store: journal line %d corrupt mid-file: %w", line, err)
			}
			return nil // torn tail from a crash mid-append: drop it
		}
		f.applyLocked(rec)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("store: scan journal: %w", err)
	}
	return nil
}

// applyLocked folds one journal record into the resident mirror.
func (f *File) applyLocked(rec journalRec) {
	switch rec.T {
	case "job":
		if rec.JobV == nil {
			return
		}
		if _, ok := f.jobs[rec.JobV.ID]; !ok {
			f.order = append(f.order, rec.JobV.ID)
		}
		f.jobs[rec.JobV.ID] = *rec.JobV
	case "ev":
		if rec.EvV == nil || rec.Job == "" {
			return
		}
		// Event logs are dense and 1-based, so a record whose Seq the log
		// already covers is a replay of one the snapshot absorbed — the
		// crash-between-rename-and-truncate window leaves exactly that
		// journal behind. Skipping it makes replay idempotent.
		if rec.EvV.Seq <= uint64(len(f.events[rec.Job])) {
			return
		}
		f.events[rec.Job] = append(f.events[rec.Job], *rec.EvV)
	case "lease":
		if rec.LeasV == nil {
			return
		}
		f.leases[rec.LeasV.Job] = *rec.LeasV
	}
}

// append journals one record (write + fsync) and folds it into the mirror,
// compacting when the journal has outgrown the threshold. Callers hold f.mu.
func (f *File) appendLocked(rec journalRec) error {
	if f.closed {
		return ErrClosed
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode journal record: %w", err)
	}
	raw = append(raw, '\n')
	if _, err := f.journal.Write(raw); err != nil {
		return fmt.Errorf("store: append journal: %w", err)
	}
	if err := f.journal.Sync(); err != nil {
		return fmt.Errorf("store: fsync journal: %w", err)
	}
	f.jsize += int64(len(raw))
	f.applyLocked(rec)
	if f.jsize >= f.compactThreshold() {
		if err := f.compactLocked(); err != nil {
			return err
		}
	}
	return nil
}

func (f *File) compactThreshold() int64 {
	if f.compactAt > 0 {
		return f.compactAt
	}
	return DefaultCompactBytes
}

// compactLocked writes the resident mirror as a fresh snapshot (tmp + fsync
// + atomic rename + dir fsync) and truncates the journal. Callers hold f.mu.
func (f *File) compactLocked() error {
	snap := snapshotFile{Version: 1, Events: f.events, Leases: f.leases}
	for _, id := range f.order {
		snap.Jobs = append(snap.Jobs, f.jobs[id])
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("store: encode snapshot: %w", err)
	}
	if err := atomicWrite(filepath.Join(f.dir, snapshotName), raw); err != nil {
		return err
	}
	if err := syncDir(f.dir); err != nil {
		return err
	}
	// The snapshot now covers everything; an empty journal replays to it.
	// Replay is idempotent even if the truncate never becomes durable, but
	// fsyncing it keeps the common restart path on the fast empty-journal
	// replay instead of re-skipping a full stale journal.
	if err := f.journal.Truncate(0); err != nil {
		return fmt.Errorf("store: truncate journal: %w", err)
	}
	if _, err := f.journal.Seek(0, 0); err != nil {
		return fmt.Errorf("store: rewind journal: %w", err)
	}
	if err := f.journal.Sync(); err != nil {
		return fmt.Errorf("store: fsync truncated journal: %w", err)
	}
	f.jsize = 0
	return nil
}

// atomicWrite writes data to path via tmp + fsync + rename.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	file, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: write %s: %w", tmp, err)
	}
	if _, err := file.Write(data); err != nil {
		file.Close()
		return fmt.Errorf("store: write %s: %w", tmp, err)
	}
	if err := file.Sync(); err != nil {
		file.Close()
		return fmt.Errorf("store: fsync %s: %w", tmp, err)
	}
	if err := file.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: rename %s: %w", tmp, err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a power cut.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: fsync dir %s: %w", dir, err)
	}
	return nil
}

// Kind names the backend.
func (f *File) Kind() string { return "file" }

// PutJob journals a job upsert.
func (f *File) PutJob(rec JobRecord) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.appendLocked(journalRec{T: "job", JobV: &rec})
}

// AppendEvent journals one event append.
func (f *File) AppendEvent(jobID string, ev EventRecord) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.appendLocked(journalRec{T: "ev", Job: jobID, EvV: &ev})
}

// PutLease journals a lease-trail upsert.
func (f *File) PutLease(rec LeaseRecord) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.appendLocked(journalRec{T: "lease", LeasV: &rec})
}

// artifactPath maps a key to its blob file, refusing path-escaping keys (the
// service passes lowercase hex fingerprints; anything else is a bug or an
// attack through the peer API).
func (f *File) artifactPath(key string) (string, error) {
	if key == "" || strings.ContainsAny(key, "/\\.") {
		return "", fmt.Errorf("store: invalid artifact key %q", key)
	}
	return filepath.Join(f.dir, artifactsDir, key), nil
}

// PutArtifact writes a warm-artifact blob atomically.
func (f *File) PutArtifact(key string, blob []byte) error {
	path, err := f.artifactPath(key)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	return atomicWrite(path, blob)
}

// GetArtifact reads a warm-artifact blob, or ErrNotFound.
func (f *File) GetArtifact(key string) ([]byte, error) {
	path, err := f.artifactPath(key)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	closed := f.closed
	f.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("store: read artifact %s: %w", key, err)
	}
	return blob, nil
}

// Artifacts lists stored artifact keys, sorted.
func (f *File) Artifacts() ([]ArtifactInfo, error) {
	f.mu.Lock()
	closed := f.closed
	f.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	entries, err := os.ReadDir(filepath.Join(f.dir, artifactsDir))
	if err != nil {
		return nil, fmt.Errorf("store: list artifacts: %w", err)
	}
	var out []ArtifactInfo
	for _, e := range entries {
		if e.IsDir() || strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		info := ArtifactInfo{Key: e.Name()}
		if fi, err := e.Info(); err == nil {
			info.Size = int(fi.Size())
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Load snapshots the resident mirror (the replayed persisted state).
func (f *File) Load() (*Snapshot, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	snap := &Snapshot{
		Events: make(map[string][]EventRecord, len(f.events)),
		Leases: make(map[string]LeaseRecord, len(f.leases)),
	}
	for _, id := range f.order {
		snap.Jobs = append(snap.Jobs, f.jobs[id])
	}
	for id, evs := range f.events {
		snap.Events[id] = append([]EventRecord(nil), evs...)
	}
	for id, l := range f.leases {
		snap.Leases[id] = l
	}
	return snap, nil
}

// Close compacts once (so restarts replay a snapshot, not a long journal)
// and releases the journal handle. Closing twice is safe. Close is also the
// crash seam: tests sever a store mid-flight by closing it, after which every
// in-flight write fails with ErrClosed exactly as if the process had died.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	err := f.compactLocked()
	f.closed = true
	if cerr := f.journal.Close(); err == nil {
		err = cerr
	}
	return err
}

// SetCompactBytes overrides the journal-size compaction threshold (tests).
func (f *File) SetCompactBytes(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.compactAt = n
}
