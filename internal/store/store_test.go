package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// openBackends returns one fresh instance of every backend, keyed by Kind.
func openBackends(t *testing.T) map[string]Store {
	t.Helper()
	f, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { _ = f.Close() })
	m := NewMem()
	t.Cleanup(func() { _ = m.Close() })
	return map[string]Store{m.Kind(): m, f.Kind(): f}
}

func raw(t *testing.T, v any) json.RawMessage {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestStoreConformance exercises the Store contract identically against both
// backends: upsert-latest-wins jobs, append-ordered events, lease trails,
// artifact round-trips and ErrClosed after Close.
func TestStoreConformance(t *testing.T) {
	for kind, st := range openBackends(t) {
		t.Run(kind, func(t *testing.T) {
			now := time.Now().UTC().Truncate(time.Second)
			if err := st.PutJob(JobRecord{ID: "job-1", State: "queued", Model: "vgg19", SubmittedAt: now}); err != nil {
				t.Fatal(err)
			}
			if err := st.PutJob(JobRecord{ID: "job-2", State: "queued", SubmittedAt: now}); err != nil {
				t.Fatal(err)
			}
			// Upsert: the later write for job-1 must win, without changing
			// submission order in the snapshot.
			if err := st.PutJob(JobRecord{ID: "job-1", State: "done", Model: "vgg19", SubmittedAt: now}); err != nil {
				t.Fatal(err)
			}
			for seq := uint64(1); seq <= 3; seq++ {
				ev := EventRecord{Seq: seq, Payload: raw(t, map[string]any{"seq": seq})}
				if err := st.AppendEvent("job-1", ev); err != nil {
					t.Fatal(err)
				}
			}
			if err := st.PutLease(LeaseRecord{Job: "job-1", Lease: "lease-1", Devices: 4, Seq: 7}); err != nil {
				t.Fatal(err)
			}
			if err := st.PutLease(LeaseRecord{Job: "job-1", Lease: "lease-1", Devices: 4, Seq: 9, Released: true}); err != nil {
				t.Fatal(err)
			}
			if err := st.PutArtifact("aabbcc", []byte("warm-blob")); err != nil {
				t.Fatal(err)
			}
			if err := st.PutArtifact("aabbcc", []byte("warm-blob-v2")); err != nil {
				t.Fatal(err)
			}

			snap, err := st.Load()
			if err != nil {
				t.Fatal(err)
			}
			if len(snap.Jobs) != 2 || snap.Jobs[0].ID != "job-1" || snap.Jobs[1].ID != "job-2" {
				t.Fatalf("jobs = %+v, want job-1,job-2 in submission order", snap.Jobs)
			}
			if snap.Jobs[0].State != "done" {
				t.Fatalf("job-1 state = %q, want last-write done", snap.Jobs[0].State)
			}
			if err := ValidateEventLog("job-1", snap.Events["job-1"]); err != nil {
				t.Fatal(err)
			}
			if len(snap.Events["job-1"]) != 3 {
				t.Fatalf("events = %d, want 3", len(snap.Events["job-1"]))
			}
			if l := snap.Leases["job-1"]; !l.Released || l.Seq != 9 {
				t.Fatalf("lease = %+v, want released seq 9", l)
			}

			blob, err := st.GetArtifact("aabbcc")
			if err != nil || string(blob) != "warm-blob-v2" {
				t.Fatalf("GetArtifact = %q, %v; want overwritten blob", blob, err)
			}
			if _, err := st.GetArtifact("missing"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("GetArtifact(missing) = %v, want ErrNotFound", err)
			}
			arts, err := st.Artifacts()
			if err != nil || len(arts) != 1 || arts[0].Key != "aabbcc" || arts[0].Size != len("warm-blob-v2") {
				t.Fatalf("Artifacts = %+v, %v", arts, err)
			}

			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			if err := st.PutJob(JobRecord{ID: "job-3", State: "queued"}); !errors.Is(err, ErrClosed) {
				t.Fatalf("PutJob after Close = %v, want ErrClosed", err)
			}
			if err := st.AppendEvent("job-1", EventRecord{Seq: 4}); !errors.Is(err, ErrClosed) {
				t.Fatalf("AppendEvent after Close = %v, want ErrClosed", err)
			}
		})
	}
}

// TestFileReopen writes through one File store, closes it, reopens the same
// directory and expects the full state back — the core crash-safety claim.
func TestFileReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		id := fmt.Sprintf("job-%d", i)
		if err := st.PutJob(JobRecord{ID: id, State: "queued", SubmittedAt: time.Now()}); err != nil {
			t.Fatal(err)
		}
		if err := st.AppendEvent(id, EventRecord{Seq: 1, Payload: raw(t, map[string]int{"i": i})}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.PutArtifact("deadbeef", []byte("blob")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	snap, err := st2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Jobs) != 3 {
		t.Fatalf("reopened jobs = %d, want 3", len(snap.Jobs))
	}
	for _, j := range snap.Jobs {
		if err := ValidateEventLog(j.ID, snap.Events[j.ID]); err != nil {
			t.Fatal(err)
		}
		if len(snap.Events[j.ID]) != 1 {
			t.Fatalf("job %s events = %d, want 1", j.ID, len(snap.Events[j.ID]))
		}
	}
	if blob, err := st2.GetArtifact("deadbeef"); err != nil || string(blob) != "blob" {
		t.Fatalf("artifact after reopen = %q, %v", blob, err)
	}
}

// TestFileTornTail simulates a crash mid-append: a truncated final journal
// line must be dropped on replay, everything before it preserved, and the
// reopened store must keep accepting writes.
func TestFileTornTail(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutJob(JobRecord{ID: "job-1", State: "queued"}); err != nil {
		t.Fatal(err)
	}
	if err := st.PutJob(JobRecord{ID: "job-2", State: "queued"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Append half a record with no trailing newline — a torn write.
	j := filepath.Join(dir, "journal.jsonl")
	f, err := os.OpenFile(j, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"job","job":{"id":"job-3","sta`); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after torn tail: %v", err)
	}
	defer st2.Close()
	snap, err := st2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Jobs) != 2 {
		t.Fatalf("jobs after torn tail = %d, want 2 (torn job-3 dropped)", len(snap.Jobs))
	}
	if err := st2.PutJob(JobRecord{ID: "job-4", State: "queued"}); err != nil {
		t.Fatalf("write after torn-tail recovery: %v", err)
	}
}

// TestFileMidJournalCorruption: garbage before the final line is not a torn
// write — it means lost state, and Open must refuse rather than silently
// drop records.
func TestFileMidJournalCorruption(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutJob(JobRecord{ID: "job-1", State: "queued"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	j := filepath.Join(dir, "journal.jsonl")
	f, err := os.OpenFile(j, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A corrupt line followed by a valid one: corruption is NOT at the tail.
	if _, err := f.WriteString("{garbage\n{\"kind\":\"job\",\"job\":{\"id\":\"job-2\",\"state\":\"queued\"}}\n"); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	if _, err := Open(dir); err == nil {
		t.Fatal("Open succeeded on mid-journal corruption, want error")
	}
}

// TestFileCompaction drives the journal past a tiny compaction threshold and
// checks the state survives compaction and a reopen.
func TestFileCompaction(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.SetCompactBytes(512)
	for i := 0; i < 50; i++ {
		// Same ID every time: compaction should collapse 50 journal entries
		// into one snapshot record.
		if err := st.PutJob(JobRecord{ID: "job-1", State: "queued", Model: strings.Repeat("x", 32)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.PutJob(JobRecord{ID: "job-1", State: "done"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, "snapshot.json")); err != nil || fi.Size() == 0 {
		t.Fatalf("snapshot.json missing after compaction: %v", err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	snap, err := st2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Jobs) != 1 || snap.Jobs[0].State != "done" {
		t.Fatalf("after compaction jobs = %+v, want single job-1 done", snap.Jobs)
	}
}

// TestFileCompactionCrashWindow simulates a kill between compaction's
// snapshot rename and its journal truncation becoming durable: the directory
// holds the new snapshot AND the full pre-compaction journal. Replaying that
// journal over the snapshot must be a no-op — in particular "ev" records must
// not re-append (3 events must stay 3, not become 6) — so the reopened store
// passes event-log validation and recovery proceeds.
func TestFileCompactionCrashWindow(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutJob(JobRecord{ID: "job-1", State: "running", SubmittedAt: time.Now()}); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := st.AppendEvent("job-1", EventRecord{Seq: seq, Payload: raw(t, map[string]uint64{"seq": seq})}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.PutLease(LeaseRecord{Job: "job-1", Lease: "lease-1", Devices: 2, Seq: 5}); err != nil {
		t.Fatal(err)
	}

	// Capture the journal as it stands, let Close compact (snapshot + journal
	// truncation), then put the old journal back: the exact on-disk state a
	// crash in the rename-to-truncate window leaves behind.
	jpath := filepath.Join(dir, "journal.jsonl")
	oldJournal, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(oldJournal) == 0 {
		t.Fatal("journal unexpectedly empty before Close")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jpath, oldJournal, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after crash window: %v", err)
	}
	defer st2.Close()
	snap, err := st2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Jobs) != 1 || snap.Jobs[0].ID != "job-1" {
		t.Fatalf("jobs = %+v, want single job-1", snap.Jobs)
	}
	if got := len(snap.Events["job-1"]); got != 3 {
		t.Fatalf("events after replaying stale journal = %d, want 3 (no duplication)", got)
	}
	if err := ValidateEventLog("job-1", snap.Events["job-1"]); err != nil {
		t.Fatalf("event log invalid after crash-window replay: %v", err)
	}
	if l := snap.Leases["job-1"]; l.Seq != 5 || l.Devices != 2 {
		t.Fatalf("lease = %+v, want seq 5 devices 2", l)
	}

	// The store must also keep appending correctly from the recovered state.
	if err := st2.AppendEvent("job-1", EventRecord{Seq: 4, Payload: raw(t, map[string]uint64{"seq": 4})}); err != nil {
		t.Fatal(err)
	}
	snap, err = st2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateEventLog("job-1", snap.Events["job-1"]); err != nil || len(snap.Events["job-1"]) != 4 {
		t.Fatalf("events after post-recovery append = %d (%v), want 4", len(snap.Events["job-1"]), err)
	}
}

// TestFileArtifactKeyValidation rejects keys that could escape artifacts/.
func TestFileArtifactKeyValidation(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, key := range []string{"../escape", "a/b", "a\\b", ".hidden", ""} {
		if err := st.PutArtifact(key, []byte("x")); err == nil {
			t.Errorf("PutArtifact(%q) succeeded, want error", key)
		}
	}
}

// TestValidateEventLog covers the dense-sequence contract directly.
func TestValidateEventLog(t *testing.T) {
	ok := []EventRecord{{Seq: 1}, {Seq: 2}, {Seq: 3}}
	if err := ValidateEventLog("j", ok); err != nil {
		t.Fatal(err)
	}
	if err := ValidateEventLog("j", []EventRecord{{Seq: 1}, {Seq: 3}}); err == nil {
		t.Fatal("gap accepted")
	}
	if err := ValidateEventLog("j", []EventRecord{{Seq: 2}}); err == nil {
		t.Fatal("non-1-based log accepted")
	}
	if err := ValidateEventLog("j", nil); err != nil {
		t.Fatalf("empty log rejected: %v", err)
	}
}
