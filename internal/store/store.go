// Package store is the persistence layer behind the planning service's
// durable mode: a narrow Store interface over everything the service must be
// able to recover after a crash — accepted jobs and their state transitions,
// each job's monotonically-sequenced plan-update event log, fleet lease
// grants, and exported warm artifacts (winning strategies keyed by workload
// fingerprint, the currency of the peer warm-cache exchange).
//
// Two backends implement it: Mem (process-lifetime maps, the default — the
// classic single-process behavior) and File (an append-only JSONL journal
// with fsynced, atomically-renamed snapshots — see file.go for the format and
// crash-safety argument). The service writes through whichever backend its
// Config names and replays Load's snapshot on startup, so a file-store server
// restarted after a kill recovers every accepted job, resumes every event log
// gap-free, and re-grants fleet leases through the allocator.
//
// Records are deliberately service-shaped but JSON-opaque where the service
// owns the schema (Spec, Report, event payloads are json.RawMessage): the
// store orders and persists, the service interprets.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// ErrNotFound reports a missing artifact (or other keyed record).
var ErrNotFound = errors.New("store: not found")

// ErrClosed reports a write against a closed (or severed) store — after a
// simulated crash, or during shutdown.
var ErrClosed = errors.New("store: closed")

// JobRecord is the durable form of one accepted job. PutJob upserts whole
// records (last write wins per ID); the journal keeps every version, the
// snapshot only the latest.
type JobRecord struct {
	ID string `json:"id"`
	// Spec is the submitted cli.Spec, re-marshaled verbatim so a recovered
	// job can rebuild its graph and cluster exactly as admission did.
	Spec json.RawMessage `json:"spec,omitempty"`
	// State is the service's JobState string at write time.
	State string `json:"state"`
	// Model and Batch mirror the resolved graph so recovered terminal jobs
	// stay listable even if the spec no longer resolves.
	Model string `json:"model,omitempty"`
	Batch int    `json:"batch,omitempty"`
	// Cluster and Devices describe the planned (or leased) cluster view.
	Cluster string `json:"cluster,omitempty"`
	Devices int    `json:"devices,omitempty"`

	ReplanOf string `json:"replan_of,omitempty"`
	Auto     bool   `json:"auto,omitempty"`
	// Recovered marks a record rewritten by crash recovery (provenance only).
	Recovered bool   `json:"recovered,omitempty"`
	Error     string `json:"error,omitempty"`
	// FailCode is the stable envelope code of the typed planning failure
	// ("oom", "no_strategy", ...), so a recovered failed job still answers
	// artifact requests with the right error code.
	FailCode string `json:"fail_code,omitempty"`
	// Report is the finished job's PlanReport (done jobs only), so reports
	// survive a restart even though the in-memory runner does not.
	Report json.RawMessage `json:"report,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// EventRecord is one persisted plan-update event. Seq mirrors the Seq inside
// the payload; the store keys ordering off it so recovery can verify each
// job's log is gap-free without parsing payloads.
type EventRecord struct {
	Seq     uint64          `json:"seq"`
	Payload json.RawMessage `json:"payload"`
}

// LeaseRecord is the durable trail of one fleet lease grant or release.
// Recovery does not replay leases directly — the allocator re-grants from
// scratch and Lease.Seq resolves races — but the trail keeps restarted
// servers' fleet history auditable and lets recovery resubmit waiting jobs
// with their original device caps.
type LeaseRecord struct {
	Job     string `json:"job"`
	Lease   string `json:"lease"`
	Devices int    `json:"devices"`
	Seq     uint64 `json:"seq"`
	// Released marks the terminal write of a lease's lifecycle.
	Released bool `json:"released,omitempty"`
}

// ArtifactInfo describes one stored warm artifact without its blob.
type ArtifactInfo struct {
	Key  string `json:"key"`
	Size int    `json:"size"`
}

// Snapshot is everything Load recovers: the latest version of every job in
// first-write (submission) order, each job's event log in Seq order, and the
// latest lease record per job.
type Snapshot struct {
	Jobs   []JobRecord
	Events map[string][]EventRecord
	Leases map[string]LeaseRecord
}

// Store persists the planning service's recoverable state. Implementations
// must be safe for concurrent use; every method may be called from request
// handlers, workers and the telemetry monitor at once.
type Store interface {
	// Kind names the backend ("mem", "file") for stats and logs.
	Kind() string
	// PutJob upserts a job record (last write per ID wins).
	PutJob(rec JobRecord) error
	// AppendEvent appends one event to a job's log. Appends must arrive in
	// Seq order per job; the file backend journals them in arrival order.
	AppendEvent(jobID string, ev EventRecord) error
	// PutLease upserts the lease trail for a job.
	PutLease(rec LeaseRecord) error
	// PutArtifact stores a warm-artifact blob under its workload key
	// (overwriting any previous blob for the key).
	PutArtifact(key string, blob []byte) error
	// GetArtifact returns the blob for key, or ErrNotFound.
	GetArtifact(key string) ([]byte, error)
	// Artifacts lists the stored artifact keys.
	Artifacts() ([]ArtifactInfo, error)
	// Load returns the recoverable state written so far (by this process or
	// a predecessor on the same backing state).
	Load() (*Snapshot, error)
	// Close flushes and releases the backend. Writes after Close fail with
	// ErrClosed; Load and GetArtifact stay readable on the Mem backend but
	// fail on File (the handles are gone — reopen instead).
	Close() error
}

// ValidateEventLog checks that a recovered event log is gap-free and
// 1-based: Seq values must be exactly 1..len(events) in order. Both backends
// return logs in append order, so a violation means lost or reordered
// persistence, which recovery treats as corruption.
func ValidateEventLog(jobID string, events []EventRecord) error {
	for i, ev := range events {
		if ev.Seq != uint64(i)+1 {
			return fmt.Errorf("store: job %s event log has seq %d at position %d (want %d): gap or reorder",
				jobID, ev.Seq, i, i+1)
		}
	}
	return nil
}
