package store

import (
	"sort"
	"sync"
)

// Mem is the in-memory Store: plain maps under a mutex, no durability. It is
// the default backend — a service on Mem behaves exactly like the classic
// single-process server (a restart starts empty) — and the reference
// implementation the file backend's tests compare against. A Mem store also
// backs peer warm-cache exchange for replicas that opt out of disk: exported
// artifacts live in the map and are served to peers until the process exits.
type Mem struct {
	mu        sync.Mutex
	closed    bool
	jobs      map[string]JobRecord
	order     []string
	events    map[string][]EventRecord
	leases    map[string]LeaseRecord
	artifacts map[string][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{
		jobs:      make(map[string]JobRecord),
		events:    make(map[string][]EventRecord),
		leases:    make(map[string]LeaseRecord),
		artifacts: make(map[string][]byte),
	}
}

// Kind names the backend.
func (m *Mem) Kind() string { return "mem" }

// PutJob upserts a job record.
func (m *Mem) PutJob(rec JobRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if _, ok := m.jobs[rec.ID]; !ok {
		m.order = append(m.order, rec.ID)
	}
	m.jobs[rec.ID] = rec
	return nil
}

// AppendEvent appends one event to a job's log.
func (m *Mem) AppendEvent(jobID string, ev EventRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.events[jobID] = append(m.events[jobID], ev)
	return nil
}

// PutLease upserts a job's lease trail.
func (m *Mem) PutLease(rec LeaseRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.leases[rec.Job] = rec
	return nil
}

// PutArtifact stores a warm-artifact blob.
func (m *Mem) PutArtifact(key string, blob []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.artifacts[key] = append([]byte(nil), blob...)
	return nil
}

// GetArtifact returns the blob for key, or ErrNotFound.
func (m *Mem) GetArtifact(key string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	blob, ok := m.artifacts[key]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), blob...), nil
}

// Artifacts lists stored artifact keys, sorted for determinism.
func (m *Mem) Artifacts() ([]ArtifactInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]ArtifactInfo, 0, len(m.artifacts))
	for k, b := range m.artifacts {
		out = append(out, ArtifactInfo{Key: k, Size: len(b)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Load snapshots the current state.
func (m *Mem) Load() (*Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := &Snapshot{
		Events: make(map[string][]EventRecord, len(m.events)),
		Leases: make(map[string]LeaseRecord, len(m.leases)),
	}
	for _, id := range m.order {
		snap.Jobs = append(snap.Jobs, m.jobs[id])
	}
	for id, evs := range m.events {
		snap.Events[id] = append([]EventRecord(nil), evs...)
	}
	for id, l := range m.leases {
		snap.Leases[id] = l
	}
	return snap, nil
}

// Close marks the store closed; reads keep working (the maps are still
// resident), writes fail with ErrClosed.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
