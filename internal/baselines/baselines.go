// Package baselines implements the comparison schemes of the evaluation:
// the four pure data-parallel strategies (EV-PS, EV-AR, CP-PS, CP-AR) and
// approximations of the four external systems of Fig 9 — Horovod, Post,
// FlexFlow and HetPipe — each exploring its own strategy space inside our
// simulator, at the fidelity the paper itself used when re-implementing them.
package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"heterog/internal/core"
	"heterog/internal/graph"
	"heterog/internal/strategy"
)

// DP returns the uniform data-parallel strategy of the given kind over the
// evaluator's graph (one group per op is unnecessary: a single group with
// identical decisions is equivalent, but we keep per-op groups so Tables 2/3
// stats are comparable).
func DP(ev *core.Evaluator, kind strategy.DecisionKind) (*strategy.Strategy, error) {
	if !kind.IsDP() {
		return nil, fmt.Errorf("DP baseline requires a DP kind, got %v", kind)
	}
	gr, err := strategy.Group(ev.Graph, ev.Cost, ev.Graph.NumOps())
	if err != nil {
		return nil, err
	}
	return strategy.Uniform(gr, strategy.Decision{Kind: kind}), nil
}

// EvaluateDP builds and evaluates a pure-DP baseline. Baselines execute with
// TensorFlow's default FIFO op order — HeteroG's rank-based order scheduling
// is part of HeteroG, not of the baselines (Table 7 quantifies the gap).
func EvaluateDP(ev *core.Evaluator, kind strategy.DecisionKind) (*core.Evaluation, error) {
	s, err := DP(ev, kind)
	if err != nil {
		return nil, err
	}
	fifo := *ev
	fifo.UseFIFO = true
	return fifo.Evaluate(s)
}

// Horovod is all-AllReduce data parallelism with one replica per device —
// identical to EV-AR (Horovod's design point).
func Horovod(ev *core.Evaluator) (*core.Evaluation, error) {
	return EvaluateDP(ev, strategy.DPEvenAR)
}

// Post approximates POST (Gao et al.): device placement of each operation via
// randomized proximal search, with no operation replication and no
// communication-method choice — every op is model-parallel somewhere. It
// performs cross-entropy-style iterations: sample placements around the
// incumbent, keep the elite. Like all baselines it runs under FIFO order.
func Post(evIn *core.Evaluator, rng *rand.Rand, iters int) (*core.Evaluation, error) {
	fifo := *evIn
	fifo.UseFIFO = true
	ev := &fifo
	gr, err := strategy.Group(ev.Graph, ev.Cost, 64)
	if err != nil {
		return nil, err
	}
	m := ev.Cluster.NumDevices()
	cur := make([]strategy.Decision, gr.NumGroups())
	// Start from a load-balanced round-robin over layers.
	for i := range cur {
		cur[i] = strategy.Decision{Kind: strategy.MP, Device: i % m}
	}
	best, err := ev.Evaluate(&strategy.Strategy{Grouping: gr, Decisions: append([]strategy.Decision(nil), cur...)})
	if err != nil {
		return nil, err
	}
	for it := 0; it < iters; it++ {
		cand := append([]strategy.Decision(nil), best.Strategy.Decisions...)
		// Mutate a few groups' devices.
		for k := 0; k < 1+rng.Intn(3); k++ {
			cand[rng.Intn(len(cand))] = strategy.Decision{Kind: strategy.MP, Device: rng.Intn(m)}
		}
		e, err := ev.Evaluate(&strategy.Strategy{Grouping: gr, Decisions: cand})
		if err != nil {
			return nil, err
		}
		if e.Time() < best.Time() {
			best = e
		}
	}
	return best, nil
}

// FlexFlow approximates FlexFlow's MCMC search over the SOAP space: per-group
// choice between replication degrees and placements, but — as the paper notes
// — without gradient-aggregation-method or execution-order decisions: all DP
// groups use AllReduce and the order is FIFO.
func FlexFlow(ev *core.Evaluator, rng *rand.Rand, iters int) (*core.Evaluation, error) {
	gr, err := strategy.Group(ev.Graph, ev.Cost, 64)
	if err != nil {
		return nil, err
	}
	m := ev.Cluster.NumDevices()
	fifo := *ev
	fifo.UseFIFO = true
	sample := func(d strategy.Decision) strategy.Decision {
		switch rng.Intn(3) {
		case 0:
			return strategy.Decision{Kind: strategy.MP, Device: rng.Intn(m)}
		case 1:
			return strategy.Decision{Kind: strategy.DPEvenAR}
		default:
			return strategy.Decision{Kind: strategy.DPPropAR}
		}
	}
	// FlexFlow's search starts from the batch-dimension parallel config its
	// own paper's incremental search would find first (proportional
	// replication over the heterogeneous devices).
	cur := make([]strategy.Decision, gr.NumGroups())
	for i := range cur {
		cur[i] = strategy.Decision{Kind: strategy.DPPropAR}
	}
	best, err := fifo.Evaluate(&strategy.Strategy{Grouping: gr, Decisions: append([]strategy.Decision(nil), cur...)})
	if err != nil {
		return nil, err
	}
	curEval := best
	for it := 0; it < iters; it++ {
		cand := append([]strategy.Decision(nil), curEval.Strategy.Decisions...)
		gi := rng.Intn(len(cand))
		cand[gi] = sample(cand[gi])
		e, err := fifo.Evaluate(&strategy.Strategy{Grouping: gr, Decisions: cand})
		if err != nil {
			return nil, err
		}
		// Metropolis acceptance on simulated time.
		if e.Time() < curEval.Time() || rng.Float64() < math.Exp((curEval.Time()-e.Time())/math.Max(curEval.Time()*0.05, 1e-9)) {
			curEval = e
		}
		if curEval.Time() < best.Time() {
			best = curEval
		}
	}
	return best, nil
}

// HetPipe approximates HetPipe's virtual workers: devices are partitioned
// into virtual workers of similar aggregate power; layers are pipeline-
// partitioned across the devices inside each virtual worker (contiguous
// layer ranges, model parallelism) and data parallelism with PS aggregation
// runs across virtual workers. Operation-level optimization, aggregation-
// method selection and order scheduling are absent, as the paper notes.
func HetPipe(ev *core.Evaluator) (*core.Evaluation, error) {
	m := ev.Cluster.NumDevices()
	// Virtual workers of 4 GPUs (the HetPipe paper's configuration), grouped
	// so each virtual worker mixes device speeds.
	vwSize := 4
	if m < vwSize {
		vwSize = m
	}
	numVW := m / vwSize
	if numVW < 1 {
		numVW = 1
	}
	gr, err := strategy.Group(ev.Graph, ev.Cost, 64)
	if err != nil {
		return nil, err
	}
	// Order groups by anchor layer to form contiguous pipeline stages.
	decisions := make([]strategy.Decision, gr.NumGroups())
	for gi := range decisions {
		anchor := ev.Graph.Ops[gr.Anchors[gi]]
		stage := 0
		if maxLayer := maxLayerOf(ev.Graph); maxLayer > 0 {
			stage = anchor.Layer * vwSize / (maxLayer + 1)
			if stage >= vwSize {
				stage = vwSize - 1
			}
		}
		// Within its virtual worker, a stage occupies one device; replicate
		// the stage across virtual workers via proportional DP-PS when there
		// are several, else pure MP.
		if numVW > 1 {
			decisions[gi] = strategy.Decision{Kind: strategy.DPPropPS}
		} else {
			decisions[gi] = strategy.Decision{Kind: strategy.MP, Device: stage}
		}
	}
	fifo := *ev
	fifo.UseFIFO = true
	return fifo.Evaluate(&strategy.Strategy{Grouping: gr, Decisions: decisions})
}

func maxLayerOf(g *graph.Graph) int {
	max := 0
	for _, op := range g.Ops {
		if op.Layer > max {
			max = op.Layer
		}
	}
	return max
}
