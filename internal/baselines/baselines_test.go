package baselines

import (
	"math/rand"
	"testing"

	"heterog/internal/cluster"
	"heterog/internal/core"
	"heterog/internal/models"
	"heterog/internal/strategy"
)

func evaluatorFor(t *testing.T) *core.Evaluator {
	t.Helper()
	g, err := models.VGG19(64)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := core.NewEvaluator(g, cluster.Testbed4().FullView(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestDPRejectsMP(t *testing.T) {
	ev := evaluatorFor(t)
	if _, err := DP(ev, strategy.MP); err == nil {
		t.Fatal("DP baseline must reject MP")
	}
}

func TestAllDPBaselinesRun(t *testing.T) {
	ev := evaluatorFor(t)
	times := map[strategy.DecisionKind]float64{}
	for _, kind := range []strategy.DecisionKind{
		strategy.DPEvenPS, strategy.DPEvenAR, strategy.DPPropPS, strategy.DPPropAR,
	} {
		e, err := EvaluateDP(ev, kind)
		if err != nil {
			t.Fatal(err)
		}
		if e.PerIter <= 0 {
			t.Fatalf("%v produced non-positive time", kind)
		}
		times[kind] = e.PerIter
	}
	// On the 2xV100 + 2x1080Ti testbed, proportional replicas beat even
	// ones (Fig 3a's premise).
	if times[strategy.DPPropAR] >= times[strategy.DPEvenAR] {
		t.Fatalf("CP-AR (%.4f) should beat EV-AR (%.4f) on a heterogeneous cluster",
			times[strategy.DPPropAR], times[strategy.DPEvenAR])
	}
}

func TestHorovodIsEVAR(t *testing.T) {
	ev := evaluatorFor(t)
	h, err := Horovod(ev)
	if err != nil {
		t.Fatal(err)
	}
	e, err := EvaluateDP(ev, strategy.DPEvenAR)
	if err != nil {
		t.Fatal(err)
	}
	if h.PerIter != e.PerIter {
		t.Fatalf("Horovod (%.4f) must equal EV-AR (%.4f)", h.PerIter, e.PerIter)
	}
}

func TestPostProducesPureMP(t *testing.T) {
	ev := evaluatorFor(t)
	e, err := Post(ev, rand.New(rand.NewSource(1)), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range e.Strategy.Decisions {
		if d.Kind != strategy.MP {
			t.Fatal("Post explores placement only: every decision must be MP")
		}
	}
}

func TestPostSearchImprovesOrHolds(t *testing.T) {
	ev := evaluatorFor(t)
	rng := rand.New(rand.NewSource(2))
	short, err := Post(ev, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng = rand.New(rand.NewSource(2))
	long, err := Post(ev, rng, 10)
	if err != nil {
		t.Fatal(err)
	}
	if long.Time() > short.Time()+1e-9 {
		t.Fatal("more search iterations must never worsen the best placement")
	}
}

func TestFlexFlowStaysInItsSpace(t *testing.T) {
	ev := evaluatorFor(t)
	e, err := FlexFlow(ev, rand.New(rand.NewSource(3)), 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range e.Strategy.Decisions {
		switch d.Kind {
		case strategy.MP, strategy.DPEvenAR, strategy.DPPropAR:
		default:
			t.Fatalf("FlexFlow must not choose %v (no PS in its space)", d.Kind)
		}
	}
}

func TestHetPipeRuns(t *testing.T) {
	ev := evaluatorFor(t)
	e, err := HetPipe(ev)
	if err != nil {
		t.Fatal(err)
	}
	if e.PerIter <= 0 {
		t.Fatal("HetPipe must produce a positive per-iteration time")
	}
}
