package heterog

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"heterog/internal/cluster"
	"heterog/internal/faults"
	"heterog/internal/graph"
	"heterog/internal/models"
)

var errBoom = errors.New("boom")

func TestGetRunnerQuickstart(t *testing.T) {
	runner, err := GetRunner(
		ZooModel(models.MobileNetV2, 64),
		func() (int, error) { return 64, nil },
		cluster.Testbed4(),
		WithEpisodes(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	report, err := runner.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if report.PerIterationSec <= 0 {
		t.Fatal("per-iteration time must be positive")
	}
	if report.TotalSec != report.PerIterationSec*100 {
		t.Fatal("total time must be steps x per-iteration")
	}
	if len(report.PeakMemBytes) != 4 {
		t.Fatalf("peak memory for %d devices, want 4", len(report.PeakMemBytes))
	}
	var share float64
	for _, v := range report.Stats.MPShare {
		share += v
	}
	for _, v := range report.Stats.DPShare {
		share += v
	}
	if share < 0.999 || share > 1.001 {
		t.Fatalf("strategy shares sum to %v", share)
	}
}

func TestGetRunnerErrors(t *testing.T) {
	devices := cluster.Testbed4()
	bad := func() (int, error) { return 64, nil }
	if _, err := GetRunner(func() (*graph.Graph, error) { return nil, errBoom }, bad, devices, nil); err == nil {
		t.Fatal("model_func errors must propagate")
	}
	runner, err := GetRunner(ZooModel(models.MobileNetV2, 64), bad, devices, WithEpisodes(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.Run(0); err == nil {
		t.Fatal("non-positive steps must error")
	}
}

func TestGetRunnerRejectsInfeasibleModel(t *testing.T) {
	// BERT-48 at batch 24 does not fit the tiny 4-GPU testbed at all; the
	// API must report the failure instead of returning an OOM plan.
	small := cluster.New("tiny",
		cluster.Config{GPUs: 2, Model: cluster.GPUModel{Name: "Tiny", PeakTFLOPS: 5, MemBytes: 4 << 30, Power: 1}, NICBandwidth: cluster.Gbps(10), PCIeBandwidth: cluster.Gbps(32)},
	)
	_, err := GetRunner(
		ZooModel(func(b int) (*graph.Graph, error) { return models.BertLarge(48, b) }, 24),
		func() (int, error) { return 24, nil },
		small,
		WithEpisodes(0),
	)
	if err == nil {
		t.Fatal("expected an infeasibility error")
	}
	if !errors.Is(err, ErrOOM) {
		t.Fatalf("infeasibility must be detectable via errors.Is(err, ErrOOM), got %v", err)
	}
}

func TestOptionsMatchLegacyConfig(t *testing.T) {
	model := ZooModel(models.MobileNetV2, 64)
	input := func() (int, error) { return 64, nil }
	legacy, err := GetRunner(model, input, cluster.Testbed4(),
		&Config{Episodes: 2, Seed: 7, UseDefaultOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	modern, err := GetRunner(model, input, cluster.Testbed4(),
		WithEpisodes(2), WithSeed(7), WithDefaultOrder())
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Plan.PerIter != modern.Plan.PerIter {
		t.Fatalf("options and legacy Config must plan identically: %v vs %v",
			legacy.Plan.PerIter, modern.Plan.PerIter)
	}
	// Options are applied in order; a later option overrides an earlier
	// Config, so migration can be incremental.
	mixed, err := GetRunner(model, input, cluster.Testbed4(),
		&Config{Episodes: 9, Seed: 7, UseDefaultOrder: true}, WithEpisodes(2))
	if err != nil {
		t.Fatal(err)
	}
	if mixed.Plan.PerIter != modern.Plan.PerIter {
		t.Fatalf("mixed Config+Option planning diverged: %v vs %v",
			mixed.Plan.PerIter, modern.Plan.PerIter)
	}
}

func TestRobustPlanningAndReport(t *testing.T) {
	runner, err := GetRunner(
		ZooModel(models.MobileNetV2, 64),
		func() (int, error) { return 64, nil },
		cluster.Testbed4(),
		WithEpisodes(1), WithRobustness(3, 0.5), WithFaultSeed(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	rr := runner.RobustReport()
	if rr == nil {
		t.Fatal("WithRobustness must populate RobustReport")
	}
	if rr.Scenarios != 3 || rr.Blend != 0.5 {
		t.Fatalf("report shape %d scenarios blend %v, want 3 and 0.5", rr.Scenarios, rr.Blend)
	}
	if rr.WorstSec < rr.NominalSec || rr.P95Sec > rr.WorstSec {
		t.Fatalf("report ordering violated: nominal %v p95 %v worst %v", rr.NominalSec, rr.P95Sec, rr.WorstSec)
	}
	// Without WithRobustness the report is absent.
	plain, err := GetRunner(ZooModel(models.MobileNetV2, 64),
		func() (int, error) { return 64, nil }, cluster.Testbed4(), WithEpisodes(0))
	if err != nil {
		t.Fatal(err)
	}
	if plain.RobustReport() != nil {
		t.Fatal("nominal planning must not attach a robust report")
	}
}

func TestWriteTraceProducesValidJSON(t *testing.T) {
	runner, err := GetRunner(ZooModel(models.MobileNetV2, 64),
		func() (int, error) { return 64, nil }, cluster.Testbed4(), WithEpisodes(0))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runner.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not Chrome trace-event JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace must contain events")
	}
}

func TestReplanBeatsStalePlanOnDegradedCluster(t *testing.T) {
	devices := cluster.Testbed8()
	runner, err := GetRunner(ZooModel(models.VGG19, 192),
		func() (int, error) { return 192, nil }, devices, WithEpisodes(4))
	if err != nil {
		t.Fatal(err)
	}
	// Degrade the cluster with the worst of the example's fault scenarios.
	dv := devices.FullView()
	scs := faults.Generate(dv, faults.DefaultModel(4, 1))
	var worst *faults.Scenario
	var worstT float64
	for _, sc := range scs {
		degraded := sc.Apply(dv)
		nr, err := runner.ReplanView(degraded)
		if err != nil {
			t.Fatalf("replan on %s: %v", sc.Name, err)
		}
		stale, err := nr.evaluator.Evaluate(runner.Strategy)
		if err != nil {
			t.Fatal(err)
		}
		// The incumbent is re-scored during Replan, so the replanned
		// runner can never lose to the stale plan.
		if nr.Plan.PerIter > stale.PerIter {
			t.Fatalf("%s: replanned %.4f slower than stale %.4f", sc.Name, nr.Plan.PerIter, stale.PerIter)
		}
		if stale.PerIter > worstT {
			worst, worstT = sc, stale.PerIter
		}
	}
	// On the worst scenario the warm replan must strictly improve (this is
	// the bundled examples/faulty outcome).
	nr, err := runner.ReplanView(worst.Apply(dv))
	if err != nil {
		t.Fatal(err)
	}
	if nr.Plan.PerIter >= worstT {
		t.Fatalf("replan on worst scenario did not improve: %.4f vs stale %.4f", nr.Plan.PerIter, worstT)
	}
}

func TestReplanAfterDeviceLoss(t *testing.T) {
	devices := cluster.Testbed4()
	runner, err := GetRunner(ZooModel(models.MobileNetV2, 64),
		func() (int, error) { return 64, nil }, devices, WithEpisodes(1))
	if err != nil {
		t.Fatal(err)
	}
	survivors, err := devices.WithoutDevice(1)
	if err != nil {
		t.Fatal(err)
	}
	nr, err := runner.Replan(survivors)
	if err != nil {
		t.Fatal(err)
	}
	if nr.Cluster.NumDevices() != 3 {
		t.Fatalf("replanned cluster has %d devices, want 3", nr.Cluster.NumDevices())
	}
	if nr.Plan.PerIter <= 0 {
		t.Fatal("replanned per-iteration time must be positive")
	}
	// The original runner is untouched.
	if runner.Cluster.NumDevices() != 4 {
		t.Fatal("Replan must not mutate the original runner")
	}
	if _, err := runner.Replan(nil); err == nil {
		t.Fatal("Replan(nil) must error")
	}
}

func TestErrNoStrategyAliasing(t *testing.T) {
	// The public sentinel must match errors wrapped around the internal one.
	if !errors.Is(ErrNoStrategy, ErrNoStrategy) {
		t.Fatal("sentinel self-identity broken")
	}
	// agent.Plan wraps the internal sentinel; the public alias must match
	// the wrapped form.
	wrapped := fmt.Errorf("heterog: strategy search: %w", fmt.Errorf("%w for %s", ErrNoStrategy, "test"))
	if !errors.Is(wrapped, ErrNoStrategy) {
		t.Fatalf("wrapped search error must match ErrNoStrategy: %v", wrapped)
	}
}
