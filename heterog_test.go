package heterog

import (
	"errors"
	"testing"

	"heterog/internal/cluster"
	"heterog/internal/graph"
	"heterog/internal/models"
)

var errBoom = errors.New("boom")

func TestGetRunnerQuickstart(t *testing.T) {
	runner, err := GetRunner(
		ZooModel(models.MobileNetV2, 64),
		func() (int, error) { return 64, nil },
		cluster.Testbed4(),
		&Config{Episodes: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	report, err := runner.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if report.PerIterationSec <= 0 {
		t.Fatal("per-iteration time must be positive")
	}
	if report.TotalSec != report.PerIterationSec*100 {
		t.Fatal("total time must be steps x per-iteration")
	}
	if len(report.PeakMemBytes) != 4 {
		t.Fatalf("peak memory for %d devices, want 4", len(report.PeakMemBytes))
	}
	var share float64
	for _, v := range report.Stats.MPShare {
		share += v
	}
	for _, v := range report.Stats.DPShare {
		share += v
	}
	if share < 0.999 || share > 1.001 {
		t.Fatalf("strategy shares sum to %v", share)
	}
}

func TestGetRunnerErrors(t *testing.T) {
	devices := cluster.Testbed4()
	bad := func() (int, error) { return 64, nil }
	if _, err := GetRunner(func() (*graph.Graph, error) { return nil, errBoom }, bad, devices, nil); err == nil {
		t.Fatal("model_func errors must propagate")
	}
	runner, err := GetRunner(ZooModel(models.MobileNetV2, 64), bad, devices, &Config{Episodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.Run(0); err == nil {
		t.Fatal("non-positive steps must error")
	}
}

func TestGetRunnerRejectsInfeasibleModel(t *testing.T) {
	// BERT-48 at batch 24 does not fit the tiny 4-GPU testbed at all; the
	// API must report the failure instead of returning an OOM plan.
	small := cluster.New("tiny",
		cluster.Config{GPUs: 2, Model: cluster.GPUModel{Name: "Tiny", PeakTFLOPS: 5, MemBytes: 4 << 30, Power: 1}, NICBandwidth: cluster.Gbps(10), PCIeBandwidth: cluster.Gbps(32)},
	)
	_, err := GetRunner(
		ZooModel(func(b int) (*graph.Graph, error) { return models.BertLarge(48, b) }, 24),
		func() (int, error) { return 24, nil },
		small,
		&Config{Episodes: 0},
	)
	if err == nil {
		t.Fatal("expected an infeasibility error")
	}
}
