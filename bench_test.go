package heterog_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§6) plus the appendix. Each benchmark regenerates its
// exhibit through internal/experiments and reports the headline quantity as
// a custom metric, so `go test -bench=. -benchmem` reproduces the whole
// evaluation. Absolute numbers come from the bundled simulator (see
// DESIGN.md); EXPERIMENTS.md records paper-vs-measured values.

import (
	"math"
	"sync"
	"testing"

	"heterog/internal/agent"
	"heterog/internal/cluster"
	"heterog/internal/core"
	"heterog/internal/experiments"
	"heterog/internal/models"
	"heterog/internal/plan"
	"heterog/internal/sched"
	"heterog/internal/sim"
	"heterog/internal/strategy"
)

// benchLab is shared across benchmarks so that strategies planned for one
// table are reused by the others, exactly as the experiment harness does.
var (
	benchLabOnce sync.Once
	benchLab     *experiments.Lab
)

func lab() *experiments.Lab {
	benchLabOnce.Do(func() {
		benchLab = experiments.NewLab(experiments.Config{Episodes: 2, Seed: 1})
	})
	return benchLab
}

func BenchmarkTable1PerIteration8GPUs(b *testing.B) {
	var rows []experiments.PerIterRow
	for i := 0; i < b.N; i++ {
		var err error
		_, rows, err = lab().Table1()
		if err != nil {
			b.Fatal(err)
		}
	}
	// Headline: geometric-mean speedup of HeteroG over the best DP baseline
	// across feasible standard workloads.
	logSum, n := 0.0, 0
	for _, r := range rows {
		best := math.Inf(1)
		for _, t := range r.Baseline {
			best = math.Min(best, t)
		}
		if math.IsInf(best, 1) || math.IsInf(r.HeteroG, 1) {
			continue
		}
		logSum += math.Log(best / r.HeteroG)
		n++
	}
	b.ReportMetric(math.Exp(logSum/float64(n)), "geomean-speedup-vs-bestDP")
}

func BenchmarkTable2StrategyShares(b *testing.B) {
	var rows []experiments.StatsRow
	for i := 0; i < b.N; i++ {
		var err error
		_, rows, err = lab().Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	var mp float64
	for _, r := range rows {
		for _, v := range r.Stats.MPShare {
			mp += v
		}
	}
	b.ReportMetric(100*mp/float64(len(rows)), "avg-MP-share-%")
}

func BenchmarkTable3LargeModelShares(b *testing.B) {
	var rows []experiments.StatsRow
	for i := 0; i < b.N; i++ {
		var err error
		_, rows, err = lab().Table3()
		if err != nil {
			b.Fatal(err)
		}
	}
	var mp float64
	for _, r := range rows {
		for _, v := range r.Stats.MPShare {
			mp += v
		}
	}
	b.ReportMetric(100*mp/float64(len(rows)), "avg-MP-share-%")
}

func BenchmarkTable4PerIteration12GPUs(b *testing.B) {
	var rows []experiments.PerIterRow
	for i := 0; i < b.N; i++ {
		var err error
		_, rows, err = lab().Table4()
		if err != nil {
			b.Fatal(err)
		}
	}
	logSum, n := 0.0, 0
	for _, r := range rows {
		best := math.Inf(1)
		for _, t := range r.Baseline {
			best = math.Min(best, t)
		}
		if math.IsInf(best, 1) || math.IsInf(r.HeteroG, 1) {
			continue
		}
		logSum += math.Log(best / r.HeteroG)
		n++
	}
	b.ReportMetric(math.Exp(logSum/float64(n)), "geomean-speedup-vs-bestDP")
}

func BenchmarkTable5EndToEnd(b *testing.B) {
	var rows []experiments.EndToEndRow
	for i := 0; i < b.N; i++ {
		var err error
		_, rows, err = lab().Table5()
		if err != nil {
			b.Fatal(err)
		}
	}
	var speedup float64
	for _, r := range rows {
		speedup += (r.CPARMin - r.HeteroGMin) / r.HeteroGMin
	}
	b.ReportMetric(100*speedup/float64(len(rows)), "avg-speedup-vs-CPAR-%")
}

func BenchmarkTable6Generalization(b *testing.B) {
	// The full leave-one-out protocol trains GNNs; one representative
	// held-out model keeps the benchmark affordable. Use
	// `heterog-bench -exp table6 -unseen ...` for the full sweep.
	var rows []experiments.Table6Row
	for i := 0; i < b.N; i++ {
		var err error
		_, rows, err = lab().Table6([]string{"mobilenet_v2"})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].RatioPercent, "finetune/scratch-%")
}

func BenchmarkTable7OrderScheduling(b *testing.B) {
	var rows []experiments.OrderRow
	for i := 0; i < b.N; i++ {
		var err error
		_, rows, err = lab().Table7()
		if err != nil {
			b.Fatal(err)
		}
	}
	var sp float64
	for _, r := range rows {
		sp += r.SpeedupPercent
	}
	b.ReportMetric(sp/float64(len(rows)), "avg-order-speedup-%")
}

func BenchmarkFig3aProportionalReplicas(b *testing.B) {
	var rows []experiments.Fig3aRow
	for i := 0; i < b.N; i++ {
		var err error
		_, rows, err = lab().Fig3a()
		if err != nil {
			b.Fatal(err)
		}
	}
	var sp float64
	for _, r := range rows {
		sp += r.SpeedupPercent
	}
	b.ReportMetric(sp/float64(len(rows)), "avg-prop-speedup-%")
}

func BenchmarkFig3bOpTimeSpread(b *testing.B) {
	var rows []experiments.Fig3bRow
	for i := 0; i < b.N; i++ {
		var err error
		_, rows, err = lab().Fig3b()
		if err != nil {
			b.Fatal(err)
		}
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range rows {
		lo = math.Min(lo, r.GTX1080Ti)
		hi = math.Max(hi, r.GTX1080Ti)
	}
	b.ReportMetric(hi/lo, "speedup-spread")
}

func BenchmarkFig8TimeBreakdown(b *testing.B) {
	var rows []experiments.Fig8Row
	for i := 0; i < b.N; i++ {
		var err error
		_, rows, err = lab().Fig8()
		if err != nil {
			b.Fatal(err)
		}
	}
	// HeteroG's overlap ratio on VGG (row 1) vs the CP baseline (row 0).
	b.ReportMetric(rows[1].OverlapRatio, "heterog-overlap-ratio")
	b.ReportMetric(rows[0].OverlapRatio, "baseline-overlap-ratio")
}

func BenchmarkFig9ExistingSchemes(b *testing.B) {
	var rows []experiments.Fig9Row
	for i := 0; i < b.N; i++ {
		var err error
		_, rows, err = lab().Fig9()
		if err != nil {
			b.Fatal(err)
		}
	}
	var hg float64
	for _, r := range rows {
		hg += r.Speeds["HeteroG"]
	}
	b.ReportMetric(hg/float64(len(rows)), "avg-speed-vs-horovod")
}

func BenchmarkFig12Motivation(b *testing.B) {
	var rows []experiments.MotivationRow
	for i := 0; i < b.N; i++ {
		var err error
		_, rows, err = experiments.Motivation()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Hetero/rows[0].Homog, "allreduce-hetero-slowdown")
}

func BenchmarkAppendixSchedulerBound(b *testing.B) {
	var rows []experiments.AppendixResult
	for i := 0; i < b.N; i++ {
		var err error
		_, rows, err = experiments.Appendix()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].RatioLS, "worstcase-LS-ratio")
}

func BenchmarkAblationMechanisms(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		_, rows, err = lab().Ablation()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Mechanism == "Sparse embedding PS" {
			b.ReportMetric(r.DeltaPct, "densePS-slowdown-%")
		}
	}
}

// BenchmarkPlannerVGG19 measures the end-to-end planning cost (profile +
// candidates + strategy search) for one workload — the "time to produce a
// deployment" a user of GetRunner experiences.
func BenchmarkPlannerVGG19(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := lab().HeteroG("vgg19", 192, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Evaluation fast-path benchmarks (see BENCH_eval.json for the recorded
// seed-vs-optimized baselines; DESIGN.md documents the fast path). ---

func benchEvaluator(b *testing.B) *core.Evaluator {
	b.Helper()
	g, err := models.VGG19(64)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := core.NewEvaluator(g, cluster.Testbed4().FullView(), 1)
	if err != nil {
		b.Fatal(err)
	}
	return ev
}

func benchStrategy(b *testing.B, ev *core.Evaluator) *strategy.Strategy {
	b.Helper()
	gr, err := strategy.Group(ev.Graph, ev.Cost, 500)
	if err != nil {
		b.Fatal(err)
	}
	return strategy.Uniform(gr, strategy.Decision{Kind: strategy.DPEvenAR})
}

// BenchmarkEvaluateCold measures the full compile → rank → simulate pipeline
// with memoization disabled — the per-episode cost every strategy paid before
// the evaluation cache.
func BenchmarkEvaluateCold(b *testing.B) {
	ev := benchEvaluator(b)
	ev.Cache = nil
	s := benchStrategy(b, ev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Evaluate(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateCached measures the cache-hit fast path: identical
// resampled strategies short-circuit compile and simulation entirely.
func BenchmarkEvaluateCached(b *testing.B) {
	ev := benchEvaluator(b)
	s := benchStrategy(b, ev)
	if _, err := ev.Evaluate(s); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Evaluate(s); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := ev.Cache.Stats()
	b.ReportMetric(float64(st.Hits)/float64(st.Hits+st.Misses), "hit-rate")
}

// BenchmarkRunEpisodesSequential is the pre-batching episode loop: one
// forward pass, one decode and one evaluation per episode, 8 episodes per op.
func BenchmarkRunEpisodesSequential(b *testing.B) {
	ev := benchEvaluator(b)
	ev.Cache = nil // isolate rollout mechanics from memoization wins
	a, err := agent.New(agent.DefaultConfig(4), 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 8; j++ {
			if _, err := a.RunEpisode(ev, false, false); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(8*b.N)/b.Elapsed().Seconds(), "episodes/s")
}

// BenchmarkRunEpisodesParallel is the batched fast path: 8 strategies decoded
// from one forward pass and evaluated concurrently over the worker pool.
func BenchmarkRunEpisodesParallel(b *testing.B) {
	ev := benchEvaluator(b)
	ev.Cache = nil // isolate rollout mechanics from memoization wins
	a, err := agent.New(agent.DefaultConfig(4), 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.RunEpisodes(ev, 8, false); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(8*b.N)/b.Elapsed().Seconds(), "episodes/s")
}

// --- Fleet-scale cold-path benchmarks (the cold_path_64dev section of
// BENCH_eval.json; DESIGN.md §10 documents the pruning layers). ---

func benchEvaluator64(b *testing.B) *core.Evaluator {
	b.Helper()
	g, err := models.VGG19(256)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := core.NewEvaluator(g, cluster.Testbed64().FullView(), 1)
	if err != nil {
		b.Fatal(err)
	}
	return ev
}

// BenchmarkEvaluateCold64 measures one exact cold evaluation on the
// 64-device testbed — the per-candidate price the planner paid for every
// sampled strategy before bound-based pruning.
func BenchmarkEvaluateCold64(b *testing.B) {
	ev := benchEvaluator64(b)
	ev.Cache = nil
	s := benchStrategy(b, ev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Evaluate(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateBounded64Pruned measures the certified-loser path: an
// all-MP candidate screened out by the analytic pre-lowering bound against a
// data-parallel incumbent — no compilation, no simulation.
func BenchmarkEvaluateBounded64Pruned(b *testing.B) {
	ev := benchEvaluator64(b)
	ev.Cache = nil
	ev.EnablePruning(nil)
	dp := benchStrategy(b, ev)
	inc, err := ev.Evaluate(dp)
	if err != nil {
		b.Fatal(err)
	}
	bound := inc.Score()
	mp := strategy.Uniform(dp.Grouping, strategy.Decision{Kind: strategy.MP, Device: 0})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := ev.EvaluateBounded(mp, bound)
		if err != nil {
			b.Fatal(err)
		}
		if !e.Pruned {
			b.Fatal("expected the all-MP candidate to be pruned")
		}
	}
}

// BenchmarkRunEpisodes64 is the PR-1-style batched episode loop on the
// 64-device testbed with pruning off: 8 strategies decoded from one forward
// pass, every one fully compiled and simulated. This is the baseline the
// cold_path_64dev throughput claim is measured against.
func BenchmarkRunEpisodes64(b *testing.B) {
	ev := benchEvaluator64(b)
	ev.Cache = nil // isolate rollout mechanics from memoization wins
	a, err := agent.New(agent.DefaultConfig(64), 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.RunEpisodes(ev, 8, false); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(8*b.N)/b.Elapsed().Seconds(), "episodes/s")
}

// BenchmarkRunEpisodes64Pruned is the same episode loop with the full
// cold-path attack armed: analytic bound screening and early-abort
// simulation against a data-parallel incumbent, plus successive-halving
// batches (1-iteration fast pass, top half promoted).
func BenchmarkRunEpisodes64Pruned(b *testing.B) {
	ev := benchEvaluator64(b)
	ev.Cache = nil // isolate pruning wins from memoization wins
	ev.EnablePruning(nil)
	acfg := agent.DefaultConfig(64)
	acfg.Halving = true
	a, err := agent.New(acfg, 64)
	if err != nil {
		b.Fatal(err)
	}
	inc, err := ev.Evaluate(benchStrategy(b, ev))
	if err != nil {
		b.Fatal(err)
	}
	bound := inc.Score()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.RunEpisodesBounded(ev, 8, false, bound); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(8*b.N)/b.Elapsed().Seconds(), "episodes/s")
	rep := ev.PipelineReport()
	b.ReportMetric(float64(rep.Pruning.PrunedPreLower), "pruned-pre")
	b.ReportMetric(float64(rep.Pruning.SimsAborted), "sims-aborted")
	b.ReportMetric(float64(rep.Pruning.CandidatesHalved), "halved")
}

// benchMutationEpisodes is the shared body for the incremental-vs-full
// mutation exhibit: an agent in mutation mode proposes ≤2-group edits against
// a data-parallel incumbent on the 64-device testbed, with pruning armed and
// the evaluation cache off. With delta true the evaluator routes through
// EvaluateDelta (patch compilation, zero-diff memo, sharded simulation);
// with delta false every surviving proposal pays the full compile + simulate
// price. Same proposal distribution either way — the eps/s ratio is the
// incremental-evaluation speedup on identical work.
func benchMutationEpisodes(b *testing.B, delta bool, batch int) {
	ev := benchEvaluator64(b)
	ev.Cache = nil // isolate delta wins from memoization wins
	ev.EnablePruning(nil)
	if delta {
		ev.EnableDelta(nil)
	}
	acfg := agent.DefaultConfig(64)
	acfg.Mutate = true
	a, err := agent.New(acfg, 64)
	if err != nil {
		b.Fatal(err)
	}
	inc, err := ev.Evaluate(benchStrategy(b, ev))
	if err != nil {
		b.Fatal(err)
	}
	if err := a.SeedIncumbent(ev, inc); err != nil {
		b.Fatal(err)
	}
	bound := inc.Score()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eps, err := a.RunEpisodesBounded(ev, batch, false, bound)
		if err != nil {
			b.Fatal(err)
		}
		// Ratchet the bound like a real mutation search: the incumbent's
		// score is the pruning bound for the next batch.
		for _, ep := range eps {
			if !ep.Eval.Pruned && ep.Eval.Score() < bound {
				bound = ep.Eval.Score()
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "episodes/s")
	rep := ev.PipelineReport()
	b.ReportMetric(float64(rep.Pruning.DeltaCompiles), "delta-compiles")
	b.ReportMetric(float64(rep.Pruning.OpsRelowered), "ops-relowered")
	b.ReportMetric(float64(rep.Pruning.SimsSharded), "sims-sharded")
	b.ReportMetric(float64(rep.Reused), "reused")
}

// BenchmarkRunEpisodes64Incremental is the incremental_64dev exhibit: the
// mutation episode loop through the delta path. Compare
// BenchmarkRunEpisodes64MutationFull for the same loop paying full price;
// TestIncrementalSpeedupGate (make bench-smoke) hard-fails CI when the
// ratio drops below 2x.
func BenchmarkRunEpisodes64Incremental(b *testing.B) {
	benchMutationEpisodes(b, true, 64)
}

// BenchmarkRunEpisodes64MutationFull is the denominator of the
// incremental_64dev ratio: identical mutation episodes, full pipeline.
func BenchmarkRunEpisodes64MutationFull(b *testing.B) {
	benchMutationEpisodes(b, false, 8)
}

// BenchmarkSimReuse measures a reused Simulator on a precompiled graph —
// the zero-alloc steady state (compare the seed sim.Run baseline recorded in
// BENCH_eval.json: 7188 allocs/op).
func BenchmarkSimReuse(b *testing.B) {
	ev := benchEvaluator(b)
	s := benchStrategy(b, ev)
	dg, err := plan.CompileIter(ev.Graph, ev.Cluster.Cluster, s, ev.Cost, 3)
	if err != nil {
		b.Fatal(err)
	}
	pr := sched.Ranks(dg)
	sm := sim.NewSimulator()
	if _, err := sm.Run(dg, pr); err != nil { // warm the buffers
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sm.Run(dg, pr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimPooledRun measures the compatibility wrapper (pooled simulator
// plus a cloned caller-owned Result).
func BenchmarkSimPooledRun(b *testing.B) {
	ev := benchEvaluator(b)
	s := benchStrategy(b, ev)
	dg, err := plan.CompileIter(ev.Graph, ev.Cluster.Cluster, s, ev.Cost, 3)
	if err != nil {
		b.Fatal(err)
	}
	pr := sched.Ranks(dg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(dg, pr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorBert measures the simulator's throughput on the largest
// standard workload (~10k dist-ops across 3 chained iterations).
func BenchmarkSimulatorBert(b *testing.B) {
	shared, err := lab().Evaluator("bert24", 48, 8)
	if err != nil {
		b.Fatal(err)
	}
	// Work on an uncached twin: this benchmark measures compile+simulate
	// throughput, which memoization would short-circuit after one iteration.
	uncached := *shared
	uncached.Cache = nil
	ev := &uncached
	be, err := lab().Baseline("bert24", 48, 8, strategy.DPEvenPS)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Evaluate(be.Strategy); err != nil {
			b.Fatal(err)
		}
	}
}
