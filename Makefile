GO ?= go

.PHONY: check vet lint build test race bench bench-smoke bench-robust bench-pipeline bench-serve bench-replan bench-fleet bench-durable

# check is the tier-1 verification entry point: static analysis, build, the
# full test suite, and the race detector over the concurrency-sensitive
# packages (evaluation cache, batched rollouts, evaluator, simulator).
check: vet lint build test race

vet:
	$(GO) vet ./...

# lint runs the deeper static analyzers when they are installed; environments
# without them (the default container) skip with a notice rather than fail,
# so `make check` stays runnable everywhere.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	elif command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run ./...; \
	else \
		echo "lint: staticcheck/golangci-lint not installed, skipping"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race covers the packages with shared mutable state on the evaluation fast
# path (plus the fault/robustness machinery feeding it, the planning service
# whose worker pool shares warm caches across jobs, the telemetry watcher and
# event log hammered by concurrent pushes, the delta-compilation state in
# internal/plan, the sharded simulator dispatch in internal/sim, the durable
# store written from handlers/workers/monitors at once, and the front router
# refreshing its backend view under concurrent submissions); running the
# whole tree under -race multiplies the RL/experiment test time ~10x for no
# extra coverage, so it is scoped deliberately.
race:
	$(GO) test -race ./internal/agent/... ./internal/cluster/... ./internal/evalcache/... ./internal/core/... ./internal/fleet/... ./internal/plan/... ./internal/sim/... ./internal/faults/... ./internal/service/... ./internal/store/... ./internal/router/... ./internal/telemetry/...

# bench regenerates the evaluation fast-path numbers recorded in
# BENCH_eval.json. The mutation-episode pair runs separately at a fixed
# iteration count: each op takes ~1s, so a 2s benchtime stops at b.N=2 and
# charges the one-off delta-state build to half the samples; 20 iterations
# measure the steady state the exhibit records.
bench:
	$(GO) test -run '^$$' -bench 'EvaluateCold|EvaluateCached|EvaluateBounded|RunEpisodesSequential|RunEpisodesParallel|RunEpisodes64$$|RunEpisodes64Pruned|SimReuse|SimPooledRun' -benchtime 2s -benchmem .
	$(GO) test -run '^$$' -bench 'RunEpisodes64Incremental|RunEpisodes64MutationFull' -benchtime 20x -benchmem .

# bench-smoke is the CI gate for the incremental-evaluation exhibit: an
# in-process run of the same seeded ≤2-edit mutation episodes through the
# delta path and the full pipeline that hard-fails when the episode-throughput
# ratio drops below 2x (the recorded exhibit in BENCH_eval.json runs ~4x).
bench-smoke:
	BENCH_SMOKE=1 $(GO) test -run TestIncrementalSpeedupGate -count=1 -v .

# bench-robust regenerates the fault/replanning exhibit recorded in
# BENCH_robust.json (nominal/p95/worst-case per workload + replan gains).
bench-robust:
	$(GO) run ./cmd/heterog-bench -exp robust -faults 4 -fault-seed 1 -out BENCH_robust.json

# bench-pipeline regenerates the planning-pipeline instrumentation exhibit
# recorded in BENCH_pipeline.json (per-pass timings + recompiles avoided by
# the lowered-artifact cache).
bench-pipeline:
	$(GO) run ./cmd/heterog-bench -exp pipeline -out BENCH_pipeline.json

# bench-serve regenerates the planning-service exhibit recorded in
# BENCH_serve.json: an in-process server driven at several client
# concurrency levels, reporting throughput, p50/p99 latency and the shared
# warm-cache hit rates.
bench-serve:
	$(GO) run ./cmd/heterog-serve -loadgen -queue 16 -out BENCH_serve.json

# bench-replan regenerates the online-replanning exhibit recorded in
# BENCH_replan.json: an in-process server ingests a seeded drift trace at
# POST /v1/jobs/{id}/telemetry, fires automatic warm-agent replans on every
# detected episode, and records the full plan-update event log plus the
# warm-set counters proving replans reattach to shared caches.
bench-replan:
	$(GO) run ./cmd/heterog-serve -driftbench -out BENCH_replan.json

# bench-fleet regenerates the fleet-scheduling exhibit recorded in
# BENCH_fleet.json: four concurrent jobs leased slices of one Testbed64 by
# the fleet allocator vs the same jobs run one at a time on the whole fleet.
# Exits non-zero when the aggregate speedup drops below the threshold.
bench-fleet:
	$(GO) run ./cmd/heterog-serve -fleetbench -out BENCH_fleet.json

# bench-durable regenerates the durable-serving exhibit recorded in
# BENCH_durable.json: a real heterog-serve subprocess on a file store is
# SIGKILLed mid-batch and must recover every accepted job with gap-free event
# logs after restart, then 3 replicas behind the affinity router are measured
# against a single replica on a warm-capacity-bound workload mix. Exits
# non-zero on any lost job, any event-log gap, or aggregate throughput below
# 1.5x one replica.
bench-durable:
	$(GO) run ./cmd/heterog-serve -durablebench -out BENCH_durable.json
