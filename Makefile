GO ?= go

.PHONY: check vet build test race bench

# check is the tier-1 verification entry point: static analysis, build, the
# full test suite, and the race detector over the concurrency-sensitive
# packages (evaluation cache, batched rollouts, evaluator, simulator).
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race covers the packages with shared mutable state on the evaluation fast
# path; running the whole tree under -race multiplies the RL/experiment test
# time ~10x for no extra coverage, so it is scoped deliberately.
race:
	$(GO) test -race ./internal/agent/... ./internal/evalcache/... ./internal/core/... ./internal/sim/...

# bench regenerates the evaluation fast-path numbers recorded in
# BENCH_eval.json.
bench:
	$(GO) test -run '^$$' -bench 'EvaluateCold|EvaluateCached|RunEpisodes|SimReuse|SimPooledRun' -benchtime 2s -benchmem .
