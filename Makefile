GO ?= go

.PHONY: check vet build test race bench bench-robust

# check is the tier-1 verification entry point: static analysis, build, the
# full test suite, and the race detector over the concurrency-sensitive
# packages (evaluation cache, batched rollouts, evaluator, simulator).
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race covers the packages with shared mutable state on the evaluation fast
# path (plus the fault/robustness machinery feeding it); running the whole
# tree under -race multiplies the RL/experiment test time ~10x for no extra
# coverage, so it is scoped deliberately.
race:
	$(GO) test -race ./internal/agent/... ./internal/evalcache/... ./internal/core/... ./internal/sim/... ./internal/faults/...

# bench regenerates the evaluation fast-path numbers recorded in
# BENCH_eval.json.
bench:
	$(GO) test -run '^$$' -bench 'EvaluateCold|EvaluateCached|RunEpisodes|SimReuse|SimPooledRun' -benchtime 2s -benchmem .

# bench-robust regenerates the fault/replanning exhibit recorded in
# BENCH_robust.json (nominal/p95/worst-case per workload + replan gains).
bench-robust:
	$(GO) run ./cmd/heterog-bench -exp robust -faults 4 -fault-seed 1 -out BENCH_robust.json
